//! OFDClean experiments: Exp-9 … Exp-14 (Figures 10–12, Table 8) and the
//! Table 6 / Figure 7 running-example trace.

use std::collections::HashSet;

use ofd_clean::{
    assign_all, build_classes, conflict_graph, delta_p, holo_clean, ofd_clean, ontology_quality,
    repair_quality, vertex_cover, HoloConfig, OfdCleanConfig, SenseAssignment, SenseView,
};
use ofd_core::{AttrId, Ofd, Relation, SenseIndex};
use ofd_datagen::{clinical, kiva, Dataset, PresetConfig};
use ofd_ontology::samples;
use serde_json::{json, Value};

use crate::params::Params;
use crate::report::{timed, ExpResult};

/// Shared harness: generate → corrupt → clean → score.
struct CleanRun {
    quality: ofd_clean::PrecisionRecall,
    ontology_q: ofd_clean::PrecisionRecall,
    secs: f64,
    data_repairs: usize,
    ontology_adds: usize,
}

fn run_ofdclean(ds: &Dataset, config: &OfdCleanConfig) -> CleanRun {
    let (result, secs) = timed(|| ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, config));
    let detectable: Vec<(usize, AttrId)> = ds
        .detectable_errors()
        .iter()
        .map(|e| (e.row, e.attr))
        .collect();
    let quality = repair_quality(
        &ds.relation,
        &result.repaired,
        &ds.clean,
        &detectable,
        &ds.full_ontology,
    );
    let ontology_q = ontology_quality(&result.repaired, &result.ontology_adds, &ds.removed_values);
    CleanRun {
        quality,
        ontology_q,
        secs,
        data_repairs: result.data_dist(),
        ontology_adds: result.ontology_dist(),
    }
}

fn run_holo(ds: &Dataset) -> (ofd_clean::PrecisionRecall, f64) {
    let (result, secs) = timed(|| {
        holo_clean(&ds.relation, &ds.ontology, &ds.ofds, &HoloConfig::default())
    });
    let detectable: Vec<(usize, AttrId)> = ds
        .detectable_errors()
        .iter()
        .map(|e| (e.row, e.attr))
        .collect();
    let q = repair_quality(
        &ds.relation,
        &result.repaired,
        &ds.clean,
        &detectable,
        &ds.full_ontology,
    );
    (q, secs)
}

fn kiva_dataset(p: &Params, n_rows: usize, err_pct: f64, inc_pct: f64, n_ofds: usize) -> Dataset {
    let mut ds = kiva(&PresetConfig {
        n_rows,
        n_attrs: 15,
        n_senses: p.lambda_default,
        synonyms: 3,
        n_ofds,
        ambiguity: 0.2,
        seed: p.seed,
    });
    ds.degrade_ontology(inc_pct / 100.0, p.seed);
    ds.inject_errors(err_pct / 100.0, p.seed);
    ds
}

fn clinical_dataset(p: &Params, n_rows: usize, err_pct: f64, inc_pct: f64, n_ofds: usize) -> Dataset {
    let mut ds = clinical(&PresetConfig {
        n_rows,
        n_attrs: 15,
        n_senses: p.lambda_default,
        synonyms: 3,
        n_ofds,
        ambiguity: 0.2,
        seed: p.seed,
    });
    ds.degrade_ontology(inc_pct / 100.0, p.seed);
    ds.inject_errors(err_pct / 100.0, p.seed);
    ds
}

/// Exp-9 (Fig. 10a/10b): accuracy and runtime vs beam size (Kiva).
pub fn exp9(p: &Params) -> ExpResult {
    let n = p.n(3_000);
    let mut result = ExpResult::new(
        "exp9",
        "Fig. 10a/10b — OFDClean accuracy & runtime vs beam size b (Kiva)",
        json!({"n_rows": n, "err_pct": p.err_default, "inc_pct": p.inc_default}),
        &["b", "precision", "recall", "secs", "ont_adds", "data_repairs"],
    );
    for &b in &p.beam_sweep {
        let ds = kiva_dataset(p, n, p.err_default, p.inc_default, p.sigma_default);
        let config = OfdCleanConfig {
            beam: Some(b),
            tau: p.tau,
            guard: p.guard.clone(),
            obs: p.obs.clone(),
            ..OfdCleanConfig::default()
        };
        let run = run_ofdclean(&ds, &config);
        result.push_row(vec![
            json!(b),
            json!(run.quality.precision),
            json!(run.quality.recall),
            json!(run.secs),
            json!(run.ontology_adds),
            json!(run.data_repairs),
        ]);
    }
    result.note("expected shape: accuracy rises with b, marginal gains after b≈4; runtime grows super-linearly in b");
    result
}

/// Exp-10 + Exp-14 (Fig. 10c/10d): OFDClean vs the HoloClean-style baseline
/// across error rates (Kiva).
pub fn exp10(p: &Params) -> ExpResult {
    let n = p.n(3_000);
    let mut result = ExpResult::new(
        "exp10",
        "Fig. 10c/10d — OFDClean vs HoloClean-style baseline vs err% (Kiva)",
        json!({"n_rows": n, "inc_pct": p.inc_default, "beam": p.beam_default}),
        &[
            "err_pct",
            "ofd_precision",
            "ofd_recall",
            "ofd_secs",
            "holo_precision",
            "holo_recall",
            "holo_secs",
        ],
    );
    let mut wins = 0usize;
    for &err in &p.err_sweep {
        let ds = kiva_dataset(p, n, err, p.inc_default, p.sigma_default);
        let config = OfdCleanConfig {
            beam: Some(p.beam_default),
            tau: p.tau,
            guard: p.guard.clone(),
            obs: p.obs.clone(),
            ..OfdCleanConfig::default()
        };
        let run = run_ofdclean(&ds, &config);
        let (hq, hs) = run_holo(&ds);
        if run.quality.precision >= hq.precision {
            wins += 1;
        }
        result.push_row(vec![
            json!(err),
            json!(run.quality.precision),
            json!(run.quality.recall),
            json!(run.secs),
            json!(hq.precision),
            json!(hq.recall),
            json!(hs),
        ]);
    }
    result.note(format!(
        "OFDClean precision ≥ baseline in {wins}/{} settings (paper: +7.4% precision, +4.4% recall, at higher runtime)",
        p.err_sweep.len()
    ));
    result
}

/// Exp-11 (Fig. 11): accuracy vs ontology incompleteness (Clinical).
pub fn exp11(p: &Params) -> ExpResult {
    let n = p.n(3_000);
    let mut result = ExpResult::new(
        "exp11",
        "Fig. 11 — accuracy vs inc% (Clinical)",
        json!({"n_rows": n, "err_pct": p.err_default}),
        &[
            "inc_pct",
            "precision",
            "recall",
            "ont_precision",
            "ont_recall",
            "ont_adds",
        ],
    );
    for &inc in &p.inc_sweep {
        let ds = clinical_dataset(p, n, p.err_default, inc, p.sigma_default);
        let config = OfdCleanConfig {
            beam: Some(p.beam_default),
            tau: p.tau,
            guard: p.guard.clone(),
            obs: p.obs.clone(),
            ..OfdCleanConfig::default()
        };
        let run = run_ofdclean(&ds, &config);
        result.push_row(vec![
            json!(inc),
            json!(run.quality.precision),
            json!(run.quality.recall),
            json!(run.ontology_q.precision),
            json!(run.ontology_q.recall),
            json!(run.ontology_adds),
        ]);
    }
    result.note("expected shape: precision declines as inc% grows (repair values land in wrong senses); recall stays ≥85% with a slight decline");
    result
}

/// Exp-12 (Fig. 12): accuracy vs the number of OFDs |Σ| (Clinical).
pub fn exp12(p: &Params) -> ExpResult {
    let n = p.n(3_000);
    let mut result = ExpResult::new(
        "exp12",
        "Fig. 12 — accuracy vs |Σ| (Clinical)",
        json!({"n_rows": n, "err_pct": p.err_default, "inc_pct": p.inc_default}),
        &["sigma", "precision", "recall", "secs"],
    );
    for &sigma in &p.sigma_sweep {
        let ds = clinical_dataset(p, n, p.err_default, p.inc_default, sigma);
        let config = OfdCleanConfig {
            beam: Some(p.beam_default),
            tau: p.tau,
            guard: p.guard.clone(),
            obs: p.obs.clone(),
            ..OfdCleanConfig::default()
        };
        let run = run_ofdclean(&ds, &config);
        result.push_row(vec![
            json!(sigma),
            json!(run.quality.precision),
            json!(run.quality.recall),
            json!(run.secs),
        ]);
    }
    result.note("expected shape: both precision and recall decline as |Σ| grows (attribute overlap between OFDs)");
    result
}

/// Exp-13 (Table 8): OFDClean runtime and accuracy vs N (Clinical).
pub fn exp13(p: &Params) -> ExpResult {
    let mut result = ExpResult::new(
        "exp13",
        "Table 8 — OFDClean runtime vs N (Clinical)",
        json!({"err_pct": p.err_default, "inc_pct": p.inc_default}),
        &["N", "precision", "recall", "secs"],
    );
    let sweep: Vec<usize> = p.n_sweep.iter().map(|&n| p.n(n / 2)).collect();
    for n in sweep {
        let ds = clinical_dataset(p, n, p.err_default, p.inc_default, p.sigma_default);
        let config = OfdCleanConfig {
            beam: Some(p.beam_default),
            tau: p.tau,
            guard: p.guard.clone(),
            obs: p.obs.clone(),
            ..OfdCleanConfig::default()
        };
        let run = run_ofdclean(&ds, &config);
        result.push_row(vec![
            json!(n),
            json!(run.quality.precision),
            json!(run.quality.recall),
            json!(run.secs),
        ]);
    }
    result.note("expected shape: runtime grows modestly with N (paper Table 8: 166→217 min for 50→250K on their testbed); precision roughly flat (±1.4%)");
    result
}

/// Table 6 + Figure 7: the running-example repair trace on the Table 4
/// subset (t8–t11 with `t11[CTRY] = Uni. States`).
pub fn table6(_p: &Params) -> ExpResult {
    // Table 4: the headache subset with the CTRY typo.
    let rel = Relation::from_rows(
        ["CC", "CTRY", "SYMP", "DIAG", "MED"],
        [
            &["US", "USA", "headache", "hypertension", "cartia"] as &[&str],
            &["US", "USA", "headache", "hypertension", "ASA"],
            &["US", "America", "headache", "hypertension", "tiazac"],
            &["US", "Uni. States", "headache", "hypertension", "adizem"],
        ],
    )
    .expect("table 4");
    let onto = samples::combined_paper_ontology();
    let sigma = vec![
        Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").expect("φ1"),
        Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").expect("φ2"),
    ];
    let classes = build_classes(&rel, &sigma);
    let index = SenseIndex::synonym(&rel, &onto);
    let overlay = HashSet::new();
    let view = SenseView {
        base: &index,
        overlay: &overlay,
    };
    let mut assignment: SenseAssignment = assign_all(&classes, view);
    // Force the FDA sense on the MED class, as the paper's narrative does.
    let dilt = onto.names("tiazac")[0];
    assignment.set(1, 0, Some(dilt));
    let usa_sense = onto.names("USA")[0];
    assignment.set(0, 0, Some(usa_sense));

    let mut result = ExpResult::new(
        "table6",
        "Table 6 — sample ontology repairs on the Table 4 subset (t8–t11)",
        json!({"tuples": 4}),
        &["ont_repair", "dist_S", "conflict_edges", "C2opt", "delta_p"],
    );

    let adds_of = |names: &[(&str, ofd_ontology::SenseId)]| -> HashSet<_> {
        names
            .iter()
            .map(|(v, s)| (rel.pool().get(v).expect("value in data"), *s))
            .collect()
    };
    let label = |t: u32| format!("t{}", t + 8); // rows 0..3 are t8..t11
    let cases: Vec<(String, HashSet<(ofd_core::ValueId, ofd_ontology::SenseId)>)> = vec![
        ("∅".to_owned(), HashSet::new()),
        ("ASA (FDA)".to_owned(), adds_of(&[("ASA", dilt)])),
        ("adizem (FDA)".to_owned(), adds_of(&[("adizem", dilt)])),
        (
            "United States (GEO)".to_owned(),
            adds_of(&[("Uni. States", usa_sense)]),
        ),
        (
            "adizem (FDA) + United States (GEO)".to_owned(),
            adds_of(&[("adizem", dilt), ("Uni. States", usa_sense)]),
        ),
        (
            "ASA (FDA) + adizem (FDA) + United States (GEO)".to_owned(),
            adds_of(&[("ASA", dilt), ("adizem", dilt), ("Uni. States", usa_sense)]),
        ),
    ];
    for (name, adds) in cases {
        let view = SenseView {
            base: &index,
            overlay: &adds,
        };
        let conflicts = conflict_graph(&rel, &classes, &assignment, view);
        let edges: Vec<String> = conflicts
            .iter()
            .map(|c| format!("({},{})", label(c.t1), label(c.t2)))
            .collect();
        let cover: Vec<String> = vertex_cover(&conflicts).iter().map(|&t| label(t)).collect();
        let dp = delta_p(&conflicts, &sigma);
        result.push_row(vec![
            json!(name),
            json!(adds.len()),
            json!(edges.join(" ")),
            json!(cover.join(",")),
            json!(dp),
        ]);
    }
    result.note("reproduces the paper's Table 6 rows: adding ASA under FDA leaves the t11 star (δ_P = 2); adizem or the CTRY fix alone keep δ_P = 4");
    result
}

/// Table 5: print the parameter grid itself.
pub fn params_table(p: &Params) -> ExpResult {
    let mut result = ExpResult::new(
        "params",
        "Table 5 — parameter values (defaults in bold in the paper)",
        json!({"scale": p.scale}),
        &["symbol", "description", "values", "default"],
    );
    let rows: Vec<(&str, &str, String, Value)> = vec![
        ("|λ|", "# senses", format!("{:?}", p.lambda_sweep), json!(p.lambda_default)),
        ("err%", "error rate", format!("{:?}", p.err_sweep), json!(p.err_default)),
        (
            "N",
            "# tuples (scaled)",
            format!("{:?}", p.scaled_n_sweep()),
            json!(p.n(p.n_default)),
        ),
        ("b", "beam size", format!("{:?}", p.beam_sweep), json!(p.beam_default)),
        ("inc%", "incompleteness rate", format!("{:?}", p.inc_sweep), json!(p.inc_default)),
        ("|Σ|", "# OFDs", format!("{:?}", p.sigma_sweep), json!(p.sigma_default)),
        ("τ", "repair budget", "fraction of |I|".to_owned(), json!(p.tau)),
    ];
    for (sym, desc, values, default) in rows {
        result.push_row(vec![json!(sym), json!(desc), json!(values), default]);
    }
    result
}
