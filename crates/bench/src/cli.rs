//! The `exp` command line, shared by the `ofd-bench` binary and the
//! umbrella crate's re-export so `cargo run --release --bin exp` works
//! from the workspace root.
//!
//! ```text
//! exp all                 # every experiment at the default scale
//! exp exp1 exp3 table6    # selected experiments
//! exp --scale 0.5 exp13   # custom scale multiplier
//! exp --full exp1         # paper-scale parameters (slow)
//! exp --out results exp6  # output directory (default: results/)
//! exp --timeout-ms 60000 all   # wall-clock budget for the whole run
//! exp --max-work 1000000 exp1  # checkpoint budget
//! exp --metrics-out m.json exp1  # engine metrics as JSON
//! exp --trace exp4             # span tree on stderr
//! ```
//!
//! The `--timeout-ms` / `--max-work` / `--max-rss-mib` limits build one
//! [`ExecGuard`](ofd_core::ExecGuard) shared by every engine invocation.
//! When it trips, the experiment in flight returns a sound partial result,
//! every later experiment returns immediately, and each affected report is
//! annotated `INCOMPLETE: interrupted (<reason>)` — both on stdout and in
//! the saved JSON's `notes`.
//!
//! `--metrics-out` / `--trace` enable one [`Obs`](ofd_core::Obs) handle
//! shared the same way: every engine invocation of the run records into it,
//! the final snapshot is written as JSON / rendered as a span tree, and each
//! saved report embeds the (cumulative) snapshot under `"metrics"`.

use std::path::PathBuf;
use std::process::ExitCode;

use ofd_core::{ExecGuard, GuardConfig, Obs};

use crate::{run_experiment, Params, ALL_EXPERIMENTS};

/// Runs the `exp` command line; `main` of both `exp` binaries.
pub fn exp_main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut params = Params::from_env();
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut guard_cfg = GuardConfig::default();
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => params = Params::full(),
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) => params = Params::with_scale(s),
                None => {
                    eprintln!("--scale requires a float argument");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--timeout-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => guard_cfg.timeout = Some(std::time::Duration::from_millis(ms)),
                None => {
                    eprintln!("--timeout-ms requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--max-work" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(w) => guard_cfg.max_work = Some(w),
                None => {
                    eprintln!("--max-work requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--max-rss-mib" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(m) => guard_cfg.max_rss_mib = Some(m),
                None => {
                    eprintln!("--max-rss-mib requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--metrics-out requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => trace = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            other => ids.push(other.to_owned()),
        }
    }
    // The guard clock starts here, after argument parsing.
    params.guard = ExecGuard::new(guard_cfg);
    if metrics_out.is_some() || trace {
        params.obs = Obs::enabled();
    }

    let want_summary = ids.iter().any(|i| i == "summary");
    ids.retain(|i| i != "summary");
    if ids.is_empty() && !want_summary {
        // No experiment named: default to exp1 when limits were given (so
        // `exp --timeout-ms 1` exercises the guard), else print usage.
        if guard_cfg.timeout.is_some()
            || guard_cfg.max_work.is_some()
            || guard_cfg.max_rss_mib.is_some()
        {
            ids.push("exp1".to_owned());
        } else {
            print_help();
            return ExitCode::FAILURE;
        }
    }

    for id in &ids {
        eprintln!("running {id} …");
        let started = std::time::Instant::now();
        match run_experiment(id, &params) {
            Some(mut result) => {
                if let Some(i) = params.guard.interrupt() {
                    result.note(format!(
                        "INCOMPLETE: interrupted ({i}); rows above are a sound partial result"
                    ));
                }
                result.attach_metrics(&params.obs.snapshot());
                println!("{}", result.render());
                match result.save(&out_dir) {
                    Ok(path) => eprintln!(
                        "{id} done in {:.1}s → {}",
                        started.elapsed().as_secs_f64(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("failed to save {id}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                eprintln!("unknown experiment {id:?}; known: {ALL_EXPERIMENTS:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Summarize last, so a combined `exp all summary` digests the results
    // just produced.
    if want_summary {
        match crate::summary::summarize(&out_dir) {
            Some(digest) => {
                println!("{digest}");
                let path = out_dir.join("SUMMARY.md");
                if let Err(e) = ofd_core::atomic_write(&path, digest.as_bytes()) {
                    eprintln!("failed to write summary: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
            None => eprintln!("no results found in {}", out_dir.display()),
        }
    }
    if params.obs.is_enabled() {
        let snapshot = params.obs.snapshot();
        if let Some(path) = &metrics_out {
            if let Err(e) = ofd_core::atomic_write(path, snapshot.to_json_string(true).as_bytes()) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote metrics to {}", path.display());
        }
        if trace {
            eprint!("{}", snapshot.render_trace());
        }
    }
    ExitCode::SUCCESS
}

fn print_help() {
    eprintln!(
        "usage: exp [--full] [--scale F] [--out DIR] \
         [--timeout-ms N] [--max-work N] [--max-rss-mib N] \
         [--metrics-out PATH] [--trace] (all | <exp-id>...)\n\
         experiments: {ALL_EXPERIMENTS:?}"
    );
}
