//! Sense-selection experiments: Exp-6 … Exp-8 (Figures 9a–9d, Table 7).

use std::collections::HashSet;

use ofd_clean::{assign_all, build_classes, local_refinement, sense_quality, SenseView};
use ofd_core::SenseIndex;
use ofd_datagen::{clinical, Dataset, PresetConfig};
use serde_json::json;

use crate::params::Params;
use crate::report::{timed, ExpResult};

fn dataset(p: &Params, n_rows: usize, n_senses: usize, err_pct: f64) -> Dataset {
    let mut ds = clinical(&PresetConfig {
        n_rows,
        n_attrs: 15,
        n_senses,
        synonyms: 3,
        n_ofds: p.sigma_default,
        ambiguity: 0.2,
        seed: p.seed,
    });
    if err_pct > 0.0 {
        ds.inject_errors(err_pct / 100.0, p.seed);
    }
    ds
}

/// Runs full sense assignment (initial + refinement) and measures quality.
fn run_sense(ds: &Dataset, theta: f64) -> (ofd_clean::PrecisionRecall, f64) {
    let ((), _warm) = ((), ());
    let classes = build_classes(&ds.relation, &ds.ofds);
    let index = SenseIndex::synonym(&ds.relation, &ds.ontology);
    let overlay = HashSet::new();
    let view = SenseView {
        base: &index,
        overlay: &overlay,
    };
    let (assignment, secs) = timed(|| {
        let mut a = assign_all(&classes, view);
        local_refinement(&ds.relation, &ds.ontology, &classes, &mut a, view, theta);
        a
    });
    let q = sense_quality(&ds.relation, &classes, &assignment, &ds.truth_senses);
    (q, secs)
}

/// Exp-6 (Fig. 9a/9b): sense accuracy and runtime vs the number of senses
/// |λ|.
pub fn exp6(p: &Params) -> ExpResult {
    let n = p.n(p.n_default);
    let mut result = ExpResult::new(
        "exp6",
        "Fig. 9a/9b — sense assignment accuracy & time vs |λ|",
        json!({"n_rows": n, "err_pct": p.err_default, "sweep": p.lambda_sweep.clone()}),
        &["lambda", "precision", "recall", "secs"],
    );
    for &lambda in &p.lambda_sweep {
        let ds = dataset(p, n, lambda, p.err_default);
        let (q, secs) = run_sense(&ds, 0.0);
        result.push_row(vec![
            json!(lambda),
            json!(q.precision),
            json!(q.recall),
            json!(secs),
        ]);
    }
    result.note("expected shape: recall 100% (every class assigned); precision declines with |λ| but stays ≥80%; time grows ~linearly");
    result
}

/// Exp-7 (Fig. 9c/9d): sense accuracy and runtime vs the error rate.
pub fn exp7(p: &Params) -> ExpResult {
    let n = p.n(p.n_default);
    let mut result = ExpResult::new(
        "exp7",
        "Fig. 9c/9d — sense assignment accuracy & time vs err%",
        json!({"n_rows": n, "lambda": p.lambda_default, "sweep": p.err_sweep.clone()}),
        &["err_pct", "precision", "recall", "secs"],
    );
    for &err in &p.err_sweep {
        let ds = dataset(p, n, p.lambda_default, err);
        let (q, secs) = run_sense(&ds, 0.0);
        result.push_row(vec![
            json!(err),
            json!(q.precision),
            json!(q.recall),
            json!(secs),
        ]);
    }
    result.note("expected shape: precision declines roughly linearly with err%; runtime increases with err%");
    result
}

/// Exp-8 (Table 7): sense-assignment runtime vs N.
pub fn exp8(p: &Params) -> ExpResult {
    let mut result = ExpResult::new(
        "exp8",
        "Table 7 — sense assignment runtime vs N",
        json!({"lambda": p.lambda_default, "err_pct": p.err_default,
               "sweep": p.scaled_n_sweep()}),
        &["N", "precision", "recall", "secs"],
    );
    for n in p.scaled_n_sweep() {
        let ds = dataset(p, n, p.lambda_default, p.err_default);
        let (q, secs) = run_sense(&ds, 0.0);
        result.push_row(vec![
            json!(n),
            json!(q.precision),
            json!(q.recall),
            json!(secs),
        ]);
    }
    result.note("expected shape: runtime grows with N (paper Table 7: 9.3 s → 27.2 s for 0.2→1 M); precision stays >90%");
    result
}
