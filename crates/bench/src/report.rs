//! Experiment result tables: machine-readable JSON plus an ASCII rendering
//! matching the paper's table/figure shapes.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde_json::{ToJson, Value};

/// One experiment's output: a titled table with typed cells.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Experiment id (e.g. `"exp1"`).
    pub id: String,
    /// Human title referencing the paper artifact.
    pub title: String,
    /// Parameters used, as free-form JSON.
    pub params: Value,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Value>>,
    /// Free-form observations (shape checks etc.).
    pub notes: Vec<String>,
    /// Optional `ofd-obs` metrics snapshot (counters/gauges/histograms/
    /// spans as of save time), embedded in the saved JSON when the run was
    /// started with `--metrics-out` or `--trace`. The underlying handle is
    /// shared by the whole `exp` invocation, so totals are cumulative
    /// across the experiments run so far.
    pub metrics: Option<Value>,
}

impl ExpResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str, params: Value, columns: &[&str]) -> ExpResult {
        ExpResult {
            id: id.to_owned(),
            title: title.to_owned(),
            params,
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            metrics: None,
        }
    }

    /// Embeds an `ofd-obs` snapshot in the report (no-op when disabled).
    /// The snapshot's own JSON writer is reparsed into a [`Value`] so the
    /// report stays a single self-describing document.
    pub fn attach_metrics(&mut self, snapshot: &ofd_core::MetricsSnapshot) {
        if !snapshot.enabled {
            return;
        }
        if let Ok(v) = serde_json::from_str(&snapshot.to_json_string(false)) {
            self.metrics = Some(v);
        }
    }

    /// Appends a row (panics if the arity mismatches the header).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Writes `<dir>/<id>.json`.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        // Atomic replace: a crash mid-run never leaves a truncated report
        // for the summarizer to trip over.
        ofd_core::atomic_write(&path, serde_json::to_string_pretty(self)?.as_bytes())?;
        Ok(path)
    }

    /// ASCII rendering.
    pub fn render(&self) -> String {
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len() + 1);
        cells.push(self.columns.clone());
        for row in &self.rows {
            cells.push(row.iter().map(render_cell).collect());
        }
        let widths: Vec<usize> = (0..self.columns.len())
            .map(|c| cells.iter().map(|r| r[c].chars().count()).max().unwrap_or(0))
            .collect();
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        for (i, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = *w))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
            if i == 0 {
                let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(&sep.join("-+-"));
                out.push('\n');
            }
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

impl ToJson for ExpResult {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("id".to_owned(), Value::from(self.id.as_str())),
            ("title".to_owned(), Value::from(self.title.as_str())),
            ("params".to_owned(), self.params.clone()),
            (
                "columns".to_owned(),
                Value::Array(self.columns.iter().map(|c| Value::from(c.as_str())).collect()),
            ),
            (
                "rows".to_owned(),
                Value::Array(self.rows.iter().map(|r| Value::Array(r.clone())).collect()),
            ),
            (
                "notes".to_owned(),
                Value::Array(self.notes.iter().map(|n| Value::from(n.as_str())).collect()),
            ),
            (
                "metrics".to_owned(),
                self.metrics.clone().unwrap_or(Value::Null),
            ),
        ])
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => "—".to_owned(),
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if n.is_f64() {
                    format!("{f:.3}")
                } else {
                    n.to_string()
                }
            } else {
                n.to_string()
            }
        }
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Convenience: times a closure, returning its output and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The process's peak resident set size (VmHWM) in MiB, from
/// `/proc/self/status`; `None` off Linux. The high-water mark only grows,
/// so per-phase attribution is approximate — the paper-shape signal it
/// supports is "FDep/FDMine exceed memory where lattice algorithms do not".
pub fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn render_aligns_columns_and_marks_missing() {
        let mut r = ExpResult::new("expX", "demo", json!({"n": 5}), &["alg", "secs"]);
        r.push_row(vec![json!("TANE"), json!(1.25)]);
        r.push_row(vec![json!("FDep"), Value::Null]);
        r.note("FDep terminated");
        let text = r.render();
        assert!(text.contains("TANE"));
        assert!(text.contains("1.250"));
        assert!(text.contains("—"));
        assert!(text.contains("note: FDep terminated"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut r = ExpResult::new("e", "t", json!({}), &["a", "b"]);
        r.push_row(vec![json!(1)]);
    }

    #[test]
    fn saves_json() {
        let dir = std::env::temp_dir().join("ofd_bench_test_results");
        let mut r = ExpResult::new("exp_test", "t", json!({}), &["a"]);
        r.push_row(vec![json!(1)]);
        let path = r.save(&dir).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("exp_test"));
    }

    #[test]
    fn timed_measures() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mib().expect("procfs available");
            assert!(rss > 0.0);
        }
    }
}
