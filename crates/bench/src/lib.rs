#![warn(missing_docs)]
//! # ofd-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§7). Each `expN` function returns an [`ExpResult`]
//! that renders as an ASCII table and serializes to `results/expN.json`;
//! the `exp` binary dispatches them:
//!
//! ```text
//! cargo run --release --bin exp -- all
//! cargo run --release --bin exp -- exp1 exp3
//! cargo run --release --bin exp -- --full exp1   # paper-scale N
//! cargo run --release --bin exp -- --timeout-ms 60000 all   # budgeted run
//! ```
//!
//! Timing-shaped experiments additionally have criterion benches under
//! `benches/`. See EXPERIMENTS.md for the experiment ↔ paper-artifact map
//! and the recorded paper-vs-measured comparison.

pub mod cli;
pub mod exp_clean;
pub mod exp_discovery;
pub mod exp_sense;
pub mod params;
pub mod report;
pub mod summary;

pub use params::Params;
pub use report::{timed, ExpResult};

/// All experiment ids in run order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "params", "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8", "exp9", "exp10",
    "exp11", "exp12", "exp13", "table6",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, p: &Params) -> Option<ExpResult> {
    Some(match id {
        "params" => exp_clean::params_table(p),
        "exp1" => exp_discovery::exp1(p),
        "exp2" => exp_discovery::exp2(p),
        "exp3" => exp_discovery::exp3(p),
        "exp4" => exp_discovery::exp4(p),
        "exp5" => exp_discovery::exp5(p),
        "exp6" => exp_sense::exp6(p),
        "exp7" => exp_sense::exp7(p),
        "exp8" => exp_sense::exp8(p),
        "exp9" => exp_clean::exp9(p),
        "exp10" | "exp14" => exp_clean::exp10(p),
        "exp11" => exp_clean::exp11(p),
        "exp12" => exp_clean::exp12(p),
        "exp13" => exp_clean::exp13(p),
        "table6" | "fig7" => exp_clean::table6(p),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-run the cheap experiments at a tiny scale; the heavyweight
    /// ones are covered by the `exp` binary and integration tests.
    #[test]
    fn smoke_table6_and_params() {
        let p = Params::with_scale(0.05);
        let t6 = run_experiment("table6", &p).unwrap();
        assert_eq!(t6.rows.len(), 6);
        // Row 2 is the ASA (FDA) repair with δ_P = 2 (Table 6).
        let asa_row = &t6.rows[1];
        assert_eq!(asa_row[0], serde_json::json!("ASA (FDA)"));
        assert_eq!(asa_row[4], serde_json::json!(2));
        let params = run_experiment("params", &p).unwrap();
        assert_eq!(params.rows.len(), 7);
        assert!(run_experiment("nonsense", &p).is_none());
    }

    #[test]
    fn smoke_exp5_runs_tiny() {
        let p = Params::with_scale(0.05);
        let r = run_experiment("exp5", &p).unwrap();
        assert!(!r.rows.is_empty());
        // Level-1-ish OFDs must show substantial synonym false positives.
        let first_pct = r.rows[0][2].as_f64().unwrap();
        assert!(first_pct > 10.0, "fp_saved_pct {first_pct}");
    }

    #[test]
    fn smoke_sense_experiments_tiny() {
        let p = Params::with_scale(0.05);
        for id in ["exp6", "exp7", "exp8"] {
            let r = run_experiment(id, &p).unwrap();
            assert_eq!(r.rows.len(), 5, "{id}");
            // Recall column is always 1.0 (every class gets a sense).
            for row in &r.rows {
                let recall = row[2].as_f64().unwrap();
                assert!(recall >= 0.999, "{id}: recall {recall}");
                let precision = row[1].as_f64().unwrap();
                assert!((0.0..=1.0).contains(&precision));
            }
        }
    }

    #[test]
    fn smoke_exp9_runs_tiny() {
        let p = Params::with_scale(0.05);
        let r = run_experiment("exp9", &p).unwrap();
        assert_eq!(r.rows.len(), 5);
        // Runtime column grows (weakly) with beam width.
        let secs: Vec<f64> = r.rows.iter().map(|row| row[3].as_f64().unwrap()).collect();
        assert!(secs.last().unwrap() >= secs.first().unwrap() || secs[0] < 0.05);
    }

    #[test]
    fn exp_ids_all_resolve() {
        let p = Params::with_scale(0.05);
        for id in ALL_EXPERIMENTS {
            // Only check dispatch, not execution, for the heavy ones.
            if matches!(*id, "params" | "table6") {
                assert!(run_experiment(id, &p).is_some());
            }
        }
    }
}
