//! `exp` — regenerates the paper's tables and figures.
//!
//! ```text
//! exp all                 # every experiment at the default scale
//! exp exp1 exp3 table6    # selected experiments
//! exp --scale 0.5 exp13   # custom scale multiplier
//! exp --full exp1         # paper-scale parameters (slow)
//! exp --out results exp6  # output directory (default: results/)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ofd_bench::{run_experiment, Params, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut params = Params::from_env();
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => params = Params::full(),
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) => params = Params::with_scale(s),
                None => {
                    eprintln!("--scale requires a float argument");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            other => ids.push(other.to_owned()),
        }
    }


    let want_summary = ids.iter().any(|i| i == "summary");
    ids.retain(|i| i != "summary");
    if ids.is_empty() && !want_summary {
        print_help();
        return ExitCode::FAILURE;
    }

    for id in &ids {
        eprintln!("running {id} …");
        let started = std::time::Instant::now();
        match run_experiment(id, &params) {
            Some(result) => {
                println!("{}", result.render());
                match result.save(&out_dir) {
                    Ok(path) => eprintln!(
                        "{id} done in {:.1}s → {}",
                        started.elapsed().as_secs_f64(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("failed to save {id}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                eprintln!("unknown experiment {id:?}; known: {ALL_EXPERIMENTS:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Summarize last, so a combined `exp all summary` digests the results
    // just produced.
    if want_summary {
        match ofd_bench::summary::summarize(&out_dir) {
            Some(digest) => {
                println!("{digest}");
                let path = out_dir.join("SUMMARY.md");
                if let Err(e) = std::fs::write(&path, digest) {
                    eprintln!("failed to write summary: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
            None => eprintln!("no results found in {}", out_dir.display()),
        }
    }
    ExitCode::SUCCESS
}

fn print_help() {
    eprintln!(
        "usage: exp [--full] [--scale F] [--out DIR] (all | <exp-id>...)\n\
         experiments: {ALL_EXPERIMENTS:?}"
    );
}
