//! Pinned streaming-maintenance workload for the incremental baseline
//! (`BENCH_incremental.json`).
//!
//! ```text
//! incremental_probe [--rows N] [--edits K] [--seed S] [--out PATH]
//! incremental_probe --check PATH       # result-shape + speedup gate
//! ```
//!
//! Feeds a seeded interleaving of appends, retracts and consequent
//! updates through an [`IncrementalChecker`] over the clinical preset.
//! **Every edit prefix** is cross-checked against a from-scratch
//! [`Validator`] rebuild — the probe is an equivalence proof first and a
//! benchmark second — and the same rebuild is what the per-edit
//! maintenance time is measured against. The delta-partition path must
//! beat full revalidation by at least 100× at the median or the probe
//! exits non-zero: that factor is the point of maintaining partitions
//! instead of recomputing them, and it is wall-clock-ratio based, so the
//! gate is stable across machines.
//!
//! `--check` re-runs the workload a baseline file records and fails on
//! any drift in the final violation count or row count (a perf artifact
//! must not go stale on wrong answers).

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use ofd_core::{IncrementalChecker, SenseIndex, Validator};
use ofd_datagen::{clinical, PresetConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde_json::Value;

struct Workload {
    rows: usize,
    edits: usize,
    seed: u64,
}

struct Measured {
    edit_p50_us: f64,
    edit_p95_us: f64,
    edit_max_us: f64,
    full_p50_us: f64,
    speedup: f64,
    final_violations: usize,
    final_rows: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Runs the seeded edit stream, timing each incremental maintenance step
/// and the from-scratch revalidation it must agree with.
fn measure(w: &Workload) -> Measured {
    let ds = clinical(&PresetConfig {
        n_rows: w.rows,
        n_attrs: 5,
        n_ofds: 2,
        seed: w.seed,
        ..PresetConfig::default()
    });
    let mut rel = ds.clean.clone();
    let mut index = SenseIndex::synonym(&rel, &ds.full_ontology);
    let mut checker = IncrementalChecker::new(&rel, &index, &ds.ofds);

    let rhs = ds.ofds[0].rhs;
    let upd = ds
        .ofds
        .iter()
        .map(|o| o.rhs)
        .find(|&r| !ds.ofds.iter().any(|o| o.lhs.contains(r)))
        .expect("the clinical preset plants an update-safe consequent");
    let base_rows = ds.clean.n_rows();

    let mut rng = StdRng::seed_from_u64(w.seed.wrapping_mul(31907));
    let mut edit_us: Vec<f64> = Vec::with_capacity(w.edits);
    let mut full_us: Vec<f64> = Vec::with_capacity(w.edits);
    for i in 0..w.edits {
        // The edit is chosen before the clock starts; only maintenance
        // (relation mutation + index extension + delta repartitioning)
        // is timed.
        match rng.random_range(0u64..10) {
            0..=3 => {
                let src = rng.random_range(0..base_rows as u64) as usize;
                let mut cells: Vec<String> =
                    ds.clean.row_texts(src).iter().map(|s| s.to_string()).collect();
                if rng.random_range(0u64..3) == 0 {
                    cells[rhs.index()] = format!("novel-{i}");
                }
                let start = Instant::now();
                let row = rel
                    .push_row(cells.iter().map(String::as_str))
                    .expect("append in bounds");
                index.extend_synonym(&rel, &ds.full_ontology);
                checker
                    .apply_insert(&rel, &index, row)
                    .expect("insert maintains");
                edit_us.push(start.elapsed().as_secs_f64() * 1e6);
            }
            4..=6 => {
                let row = rng.random_range(0..rel.n_rows() as u64) as usize;
                let value = if rng.random_range(0u64..4) == 0 {
                    format!("novel-{i}")
                } else {
                    ds.clean
                        .text(rng.random_range(0..base_rows as u64) as usize, upd)
                        .to_string()
                };
                let start = Instant::now();
                let old = rel.value(row, upd);
                let new = rel.set(row, upd, &value).expect("update in bounds");
                index.extend_synonym(&rel, &ds.full_ontology);
                checker
                    .apply_update(&index, row, upd, old, new)
                    .expect("update maintains");
                edit_us.push(start.elapsed().as_secs_f64() * 1e6);
            }
            _ => {
                let row = rng.random_range(0..rel.n_rows() as u64) as usize;
                let start = Instant::now();
                checker
                    .apply_retract(&mut rel, &index, row)
                    .expect("retract maintains");
                edit_us.push(start.elapsed().as_secs_f64() * 1e6);
            }
        }

        // Prefix equivalence: a from-scratch validation of the current
        // rows must agree OFD by OFD, and its wall time is the baseline
        // the incremental path is credited against.
        let start = Instant::now();
        let validator = Validator::new(&rel, &ds.full_ontology);
        let fresh: Vec<usize> = ds
            .ofds
            .iter()
            .map(|o| validator.check(o).violation_count())
            .collect();
        full_us.push(start.elapsed().as_secs_f64() * 1e6);
        let maintained = checker.per_ofd_violations();
        assert_eq!(
            maintained, fresh,
            "edit {i}: maintained violations diverged from from-scratch validation"
        );
    }

    edit_us.sort_by(|a, b| a.total_cmp(b));
    full_us.sort_by(|a, b| a.total_cmp(b));
    let edit_p50_us = percentile(&edit_us, 0.5);
    let full_p50_us = percentile(&full_us, 0.5);
    Measured {
        edit_p50_us,
        edit_p95_us: percentile(&edit_us, 0.95),
        edit_max_us: percentile(&edit_us, 1.0),
        full_p50_us,
        speedup: full_p50_us / edit_p50_us,
        final_violations: checker.violation_count(),
        final_rows: rel.n_rows(),
    }
}

fn report(w: &Workload, m: &Measured) -> Value {
    Value::Object(vec![
        ("bench".to_owned(), Value::from("incremental")),
        (
            "workload".to_owned(),
            Value::Object(vec![
                ("preset".to_owned(), Value::from("clinical")),
                ("rows".to_owned(), Value::from(w.rows)),
                ("edits".to_owned(), Value::from(w.edits)),
                ("seed".to_owned(), Value::from(w.seed)),
            ]),
        ),
        ("edit_p50_us".to_owned(), Value::from(m.edit_p50_us)),
        ("edit_p95_us".to_owned(), Value::from(m.edit_p95_us)),
        ("edit_max_us".to_owned(), Value::from(m.edit_max_us)),
        ("full_revalidate_p50_us".to_owned(), Value::from(m.full_p50_us)),
        ("speedup".to_owned(), Value::from(m.speedup)),
        ("final_violations".to_owned(), Value::from(m.final_violations)),
        ("final_rows".to_owned(), Value::from(m.final_rows)),
    ])
}

const MIN_SPEEDUP: f64 = 100.0;

fn main() -> ExitCode {
    let mut w = Workload {
        rows: 40_000,
        edits: 500,
        seed: 42,
    };
    let mut out = "BENCH_incremental.json".to_owned();
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match arg.as_str() {
            "--rows" => w.rows = value("--rows").parse().expect("--rows N"),
            "--edits" => w.edits = value("--edits").parse().expect("--edits K"),
            "--seed" => w.seed = value("--seed").parse().expect("--seed S"),
            "--out" => out = value("--out"),
            "--check" => check = Some(value("--check")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    if let Some(path) = check {
        let baseline: Value = serde_json::from_str(
            &std::fs::read_to_string(Path::new(&path))
                .unwrap_or_else(|e| panic!("read baseline {path}: {e}")),
        )
        .expect("baseline parses");
        let wl = baseline.get("workload").expect("baseline workload");
        w.rows = wl.get("rows").and_then(Value::as_u64).expect("rows") as usize;
        w.edits = wl.get("edits").and_then(Value::as_u64).expect("edits") as usize;
        w.seed = wl.get("seed").and_then(Value::as_u64).expect("seed");
        let m = measure(&w);
        let recorded_violations =
            baseline.get("final_violations").and_then(Value::as_u64).expect("violations") as usize;
        let recorded_rows =
            baseline.get("final_rows").and_then(Value::as_u64).expect("rows") as usize;
        if m.final_violations != recorded_violations || m.final_rows != recorded_rows {
            eprintln!(
                "incremental_probe: result drift — baseline ({recorded_rows} rows, {recorded_violations} violations) vs now ({} rows, {} violations)",
                m.final_rows, m.final_violations
            );
            return ExitCode::FAILURE;
        }
        if m.speedup < MIN_SPEEDUP {
            eprintln!(
                "incremental_probe: speedup {:.1}x is below the {MIN_SPEEDUP:.0}x floor (edit p50 {:.1}us vs full {:.1}us)",
                m.speedup, m.edit_p50_us, m.full_p50_us
            );
            return ExitCode::FAILURE;
        }
        println!(
            "incremental_probe: check ok ({} edits equivalent at every prefix, {:.0}x over full revalidation)",
            w.edits, m.speedup
        );
        return ExitCode::SUCCESS;
    }

    let m = measure(&w);
    assert!(
        m.speedup >= MIN_SPEEDUP,
        "incremental maintenance must beat full revalidation by {MIN_SPEEDUP:.0}x at the median, got {:.1}x",
        m.speedup
    );
    let text = serde_json::to_string_pretty(&report(&w, &m)).expect("serialize") + "\n";
    std::fs::write(&out, &text).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "incremental_probe: {} edits on {} rows, per-edit p50 {:.1}us (p95 {:.1}us), full revalidation p50 {:.0}us — {:.0}x; baseline written to {out}",
        w.edits, w.rows, m.edit_p50_us, m.edit_p95_us, m.full_p50_us, m.speedup
    );
    ExitCode::SUCCESS
}
