//! Crash-safety soak harness: kill discovery and cleaning at random
//! points, resume from on-disk checkpoints, and assert the final result
//! is **identical** to an uninterrupted run's — the kill-at-any-point
//! contract behind `--checkpoint-dir`/`--resume`.
//!
//! ```text
//! chaos_probe [--seed S] [--trials T] [--rows N] [--dir D]
//! ```
//!
//! Each trial kills the engine at a random guard checkpoint (the same
//! on-disk state a `kill -9` at a level/phase boundary leaves behind,
//! since snapshots cover only completed boundaries), then resumes —
//! possibly killing again — until a run completes. A third of the trials
//! also inject snapshot-write faults (I/O errors and torn writes) from a
//! seeded [`FaultPlan`]; a lost checkpoint may cost recompute but must
//! never change the answer. A final pass injects worker panics and
//! asserts they degrade to a sound partial result instead of aborting.
//! Any divergence prints the differing trial and exits non-zero.

use std::process::ExitCode;

use ofd_clean::{ofd_clean, CleanResult, OfdCleanConfig};
use ofd_core::{
    silence_injected_panics, CheckpointOptions, FaultPlan, Interrupt, SnapshotStore,
};
use ofd_datagen::{clinical, Dataset, PresetConfig};
use ofd_discovery::{Discovery, DiscoveryOptions, FastOfd};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Args {
    seed: u64,
    trials: u64,
    rows: usize,
    dir: std::path::PathBuf,
}

fn parse_args() -> Args {
    let mut out = Args {
        seed: 42,
        trials: 12,
        rows: 300,
        dir: std::env::temp_dir().join(format!("ofd_chaos_{}", std::process::id())),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} VALUE"));
        match arg.as_str() {
            "--seed" => out.seed = value("--seed").parse().expect("--seed expects an integer"),
            "--trials" => {
                out.trials = value("--trials").parse().expect("--trials expects an integer");
            }
            "--rows" => out.rows = value("--rows").parse().expect("--rows expects an integer"),
            "--dir" => out.dir = value("--dir").into(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    out
}

/// The comparable essence of a discovery run: `(lhs, rhs, support bits,
/// level)` per OFD. Bit-level support comparison — resumed runs must be
/// byte-identical, not merely approximately equal.
fn sigma_key(d: &Discovery) -> Vec<(u64, u64, u64, u64)> {
    d.ofds
        .iter()
        .map(|o| {
            (
                o.ofd.lhs.bits(),
                o.ofd.rhs.index() as u64,
                o.support.to_bits(),
                o.level as u64,
            )
        })
        .collect()
}

fn discover(ds: &Dataset, ck: Option<CheckpointOptions>, kill_at: Option<u64>) -> Discovery {
    let mut opts = DiscoveryOptions::new().max_level(3);
    if let Some(ck) = ck {
        opts = opts.checkpoint(ck);
    }
    if let Some(n) = kill_at {
        opts.guard.fail_after(n);
    }
    FastOfd::new(&ds.relation, &ds.ontology).options(opts).run()
}

fn clean(ds: &Dataset, ck: Option<CheckpointOptions>, kill_at: Option<u64>) -> CleanResult {
    let config = OfdCleanConfig {
        checkpoint: ck,
        ..OfdCleanConfig::default()
    };
    if let Some(n) = kill_at {
        config.guard.fail_after(n);
    }
    ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config)
}

/// Snapshot-write fault plan for every third trial: probabilistic I/O
/// errors and torn writes, seeded per trial so reruns reproduce exactly.
fn trial_faults(rng: &mut StdRng, trial: u64) -> FaultPlan {
    if !trial.is_multiple_of(3) {
        return FaultPlan::none();
    }
    let spec = format!(
        "seed={},snapshot-io%0.2,snapshot-torn%0.15",
        rng.random_range(0u64..u64::MAX)
    );
    FaultPlan::parse(&spec).expect("valid fault spec")
}

fn checkpoint(dir: &std::path::Path, faults: &FaultPlan, resume: bool) -> CheckpointOptions {
    let mut store = SnapshotStore::new(dir);
    if faults.is_active() {
        store = store.with_faults(faults.clone());
    }
    CheckpointOptions { store, resume }
}

fn main() -> ExitCode {
    let args = parse_args();
    silence_injected_panics();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut ds = clinical(&PresetConfig {
        n_rows: args.rows,
        n_ofds: 6,
        seed: args.seed,
        ..PresetConfig::default()
    });
    ds.degrade_ontology(0.04, args.seed);
    ds.inject_errors(0.03, args.seed);

    // Ground truth: one uninterrupted run of each engine.
    let ref_sigma = sigma_key(&discover(&ds, None, None));
    let ref_clean = clean(&ds, None, None);
    assert!(ref_clean.complete, "reference clean must complete");
    println!(
        "reference: {} OFDs, {} cell repairs, {} ontology adds",
        ref_sigma.len(),
        ref_clean.data_repairs.len(),
        ref_clean.ontology_adds.len()
    );

    let mut failures = 0u64;
    for trial in 0..args.trials {
        let dir = args.dir.join(format!("trial{trial}"));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = trial_faults(&mut rng, trial);

        // Kill → resume (→ kill → resume …) until a run completes. 64
        // attempts bounds the loop; the last attempt runs unlimited.
        let mut kill_at = Some(rng.random_range(1u64..2000));
        let mut resume = false;
        let (mut resumes, mut disc) = (0u64, None);
        for attempt in 0..64 {
            let out = discover(&ds, Some(checkpoint(&dir, &faults, resume)), kill_at);
            resume = true;
            resumes += u64::from(out.resumed_from_level.is_some());
            if out.complete {
                disc = Some(out);
                break;
            }
            kill_at = if attempt < 62 {
                Some(rng.random_range(1u64..2000))
            } else {
                None
            };
        }
        let disc = disc.expect("an unlimited attempt always completes");
        if sigma_key(&disc) != ref_sigma {
            eprintln!(
                "FAIL trial {trial}: resumed Σ diverged ({} vs {} OFDs, faults {})",
                disc.ofds.len(),
                ref_sigma.len(),
                faults.total_fired()
            );
            failures += 1;
        }

        // Same game for the cleaner, phase-boundary checkpoints.
        let clean_dir = dir.join("clean");
        let mut kill_at = Some(rng.random_range(1u64..80));
        let mut resume = false;
        let mut repaired = None;
        for attempt in 0..64 {
            let out = clean(&ds, Some(checkpoint(&clean_dir, &faults, resume)), kill_at);
            resume = true;
            if out.complete {
                repaired = Some(out);
                break;
            }
            kill_at = if attempt < 62 {
                Some(rng.random_range(1u64..80))
            } else {
                None
            };
        }
        let repaired = repaired.expect("an unlimited attempt always completes");
        let same_instance = repaired
            .repaired
            .cell_distance(&ref_clean.repaired)
            .map(|d| d == 0)
            .unwrap_or(false);
        if !same_instance
            || repaired.data_repairs != ref_clean.data_repairs
            || repaired.ontology_adds != ref_clean.ontology_adds
            || repaired.satisfied != ref_clean.satisfied
        {
            eprintln!("FAIL trial {trial}: resumed clean diverged");
            failures += 1;
        }

        println!(
            "trial {trial}: ok ({resumes} discovery resumes, {} injected faults)",
            faults.total_fired()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Panic isolation: an injected worker panic must degrade to a sound
    // partial result — never abort the process.
    let panic_faults = FaultPlan::parse(&format!("seed={},panic@3", args.seed)).expect("spec");
    let mut opts = DiscoveryOptions::new().max_level(3).faults(panic_faults);
    opts = opts.threads(2);
    let out = FastOfd::new(&ds.relation, &ds.ontology).options(opts).run();
    if out.complete || out.interrupt != Some(Interrupt::WorkerPanic) {
        eprintln!(
            "FAIL: injected panic did not surface as WorkerPanic (complete={}, interrupt={:?})",
            out.complete, out.interrupt
        );
        failures += 1;
    } else {
        println!(
            "panic isolation: ok ({} OFDs in the sound partial result)",
            out.ofds.len()
        );
    }

    let _ = std::fs::remove_dir_all(&args.dir);
    if failures == 0 {
        println!("chaos_probe: all {} trials consistent", args.trials);
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos_probe: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
