//! Service-layer soak harness: hammer a real `ofd-serve` child process
//! with bursts, kill it mid-flight, drain it with SIGTERM, and corrupt
//! its snapshots — then assert every accepted request is answered, shed
//! requests carry honest backoff hints, and a restarted server produces
//! **byte-identical** results on the same checkpoint directory.
//!
//! ```text
//! serve_probe [--seed S] [--rows N] [--dir D]
//! serve_probe --server [--workers N] [--queue-cap N] [--budget-ms N]
//!             [--checkpoint-dir D] [--faults SPEC]   # child mode
//! ```
//!
//! The parent re-execs itself (`current_exe`) in `--server` mode so the
//! soak exercises real process boundaries: SIGKILL loses everything not
//! on disk, SIGTERM triggers the cooperative drain path, and the client
//! side sees genuine connection resets, not in-process shortcuts.
//!
//! Phases:
//! 1. **Shed** — burst a tiny-queue server; retried-with-backoff clients
//!    must all eventually succeed bit-identically, and `/metrics` must
//!    report the shed.
//! 2. **SIGKILL + resume** — kill the child mid-discovery at a seeded
//!    delay, restart on the same checkpoint dir, resend: Σ must be
//!    byte-identical to the uninterrupted reference.
//! 3. **SIGTERM drain** — the in-flight request is answered (complete or
//!    a sound cancelled partial) before the child exits 0.
//! 4. **Snapshot faults** — same kill/restart game with seeded snapshot
//!    I/O errors and torn writes; a lost checkpoint may cost recompute
//!    but must never change the answer.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use ofd_core::FaultPlan;
use ofd_datagen::{clinical, csv, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};
use ofd_serve::{termination_flag, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde_json::{json, Value};

// ---------------------------------------------------------- child mode

/// Runs a real server in this process until SIGTERM/SIGINT, then drains.
/// The parent scrapes the `listening on ADDR` line to find the port.
fn server_mode(flags: &[(String, String)]) -> ExitCode {
    let get = |name: &str| flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str());
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    };
    if let Some(n) = get("workers") {
        cfg.workers = n.parse().expect("--workers N");
    }
    if let Some(n) = get("queue-cap") {
        cfg.queue_cap = n.parse().expect("--queue-cap N");
    }
    if let Some(ms) = get("budget-ms") {
        cfg.budget_ms = ms.parse().expect("--budget-ms N");
    }
    cfg.checkpoint_dir = get("checkpoint-dir").map(PathBuf::from);
    if let Some(spec) = get("faults") {
        cfg.faults = FaultPlan::parse(spec).expect("valid fault spec");
        ofd_core::silence_injected_panics();
    }
    let server = Server::bind(cfg).expect("child bind");
    println!("listening on {}", server.addr());
    std::io::stdout().flush().expect("flush");
    let term = termination_flag();
    while !term.load(std::sync::atomic::Ordering::SeqCst) && !server.drain_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let summary = server.shutdown(Duration::from_secs(30));
    eprintln!(
        "child drained: admitted={} shed={} drained={} resumed={}",
        summary.admitted, summary.shed, summary.drained, summary.resumed
    );
    ExitCode::SUCCESS
}

// --------------------------------------------------------- child control

struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

/// Spawns `current_exe --server` with the given flags and waits for its
/// `listening on` line.
fn spawn_server(flags: &[(&str, String)]) -> ServerProc {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--server");
    for (name, value) in flags {
        cmd.arg(format!("--{name}")).arg(value);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn server child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("child prints its address")
        .expect("read child stdout");
    let addr: SocketAddr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected child banner {line:?}"))
        .parse()
        .expect("child address parses");
    // Keep draining the pipe so the child never blocks on a full stdout.
    std::thread::spawn(move || for _ in lines {});
    ServerProc { child, addr }
}

impl ServerProc {
    /// SIGTERM on unix (cooperative drain); hard kill elsewhere.
    fn terminate(&mut self) {
        #[cfg(unix)]
        {
            extern "C" {
                fn kill(pid: i32, sig: i32) -> i32;
            }
            let rc = unsafe { kill(self.child.id() as i32, 15) };
            assert_eq!(rc, 0, "SIGTERM delivered");
        }
        #[cfg(not(unix))]
        self.child.kill().expect("kill child");
    }

    /// SIGKILL: the child gets no chance to drain — only the checkpoint
    /// directory survives.
    fn kill_hard(&mut self) {
        self.child.kill().expect("SIGKILL child");
        let _ = self.child.wait();
    }

    fn wait_exit(&mut self, timeout: Duration) -> Option<i32> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.code();
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

// ------------------------------------------------------------ tiny client

struct Reply {
    status: u16,
    retry_after_ms: Option<u64>,
    body: Value,
}

/// One request over a fresh connection. `Err` means the transport died
/// (expected while a child is being SIGKILLed), never a served error.
fn try_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Value>,
) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serialize"))
        .unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: probe\r\ncontent-length: {}\r\n\r\n",
        body_text.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body_text.as_bytes())?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 reply"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "truncated reply"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let parsed = if payload.is_empty() {
        Value::Null
    } else {
        serde_json::from_str(payload).unwrap_or(Value::Null)
    };
    let retry_after_ms = parsed.get("retry_after_ms").and_then(Value::as_u64);
    Ok(Reply {
        status,
        retry_after_ms,
        body: parsed,
    })
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&Value>) -> Reply {
    try_request(addr, method, path, body).expect("request against a live server")
}

/// Retries through 429/503 with jittered exponential backoff, honouring
/// the server's `retry_after_ms` hint as the floor. Returns the first
/// 2xx reply and how many times it was shed on the way.
fn request_with_backoff(addr: SocketAddr, body: &Value, rng: &mut StdRng) -> (Reply, u64) {
    let mut backoff = Duration::from_millis(25);
    let mut shed = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request(addr, "POST", "/v1/discover", Some(body));
        if reply.status == 200 {
            return (reply, shed);
        }
        assert!(
            reply.status == 429 || reply.status == 503,
            "only load shedding is retryable, got {}",
            reply.status
        );
        shed += 1;
        assert!(Instant::now() < deadline, "backoff retries must converge");
        let hint = reply.retry_after_ms.map(Duration::from_millis);
        let jitter = Duration::from_millis(rng.random_range(0u64..backoff.as_millis() as u64 + 1));
        std::thread::sleep(backoff.max(hint.unwrap_or(Duration::ZERO)) + jitter);
        backoff = (backoff * 2).min(Duration::from_secs(2));
    }
}

// --------------------------------------------------------------- fixtures

fn dataset(rows: usize, attrs: usize, seed: u64) -> (String, String) {
    let ds = clinical(&PresetConfig {
        n_rows: rows,
        n_attrs: attrs,
        n_ofds: 2,
        seed,
        ..PresetConfig::default()
    });
    (
        csv::write_csv(&ds.clean),
        ofd_ontology::write_ontology(&ds.full_ontology),
    )
}

/// Sorted `(lhs, rhs, support bits, level)` keys from a served reply.
fn sigma_keys(reply: &Value) -> Vec<(String, String, u64, u64)> {
    let mut keys: Vec<_> = reply
        .get("ofds")
        .and_then(Value::as_array)
        .expect("ofds array")
        .iter()
        .map(|o| {
            let lhs: Vec<&str> = o
                .get("lhs")
                .and_then(Value::as_array)
                .expect("lhs")
                .iter()
                .map(|v| v.as_str().expect("lhs name"))
                .collect();
            (
                lhs.join(","),
                o.get("rhs").and_then(Value::as_str).expect("rhs").to_string(),
                o.get("support_bits").and_then(Value::as_u64).expect("bits"),
                o.get("level").and_then(Value::as_u64).expect("level"),
            )
        })
        .collect();
    keys.sort();
    keys
}

/// Uninterrupted in-process ground truth for the same payload.
fn reference_sigma(csv_text: &str, onto_text: &str) -> Vec<(String, String, u64, u64)> {
    let rel = csv::read_csv(csv_text).expect("csv");
    let onto = ofd_ontology::parse_ontology(onto_text).expect("onto");
    let out = FastOfd::new(&rel, &onto).options(DiscoveryOptions::new()).run();
    assert!(out.complete, "reference run is uninterrupted");
    let schema = rel.schema();
    let mut keys: Vec<_> = out
        .ofds
        .iter()
        .map(|d| {
            let lhs: Vec<&str> = d.ofd.lhs.iter().map(|a| schema.name(a)).collect();
            (
                lhs.join(","),
                schema.name(d.ofd.rhs).to_string(),
                d.support.to_bits(),
                d.level as u64,
            )
        })
        .collect();
    keys.sort();
    keys
}

fn counter(metrics: &Value, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metrics expose pinned counter {name}"))
}

// ----------------------------------------------------------------- phases

struct Args {
    seed: u64,
    rows: usize,
    dir: PathBuf,
}

/// Phase 1: a burst over a tiny admission queue. Every client converges
/// through backoff, shed replies carried hints, and `/metrics` owns up.
fn phase_shed(args: &Args, csv_text: &str, onto_text: &str, reference: &[(String, String, u64, u64)]) {
    let mut server = spawn_server(&[
        ("workers", "1".to_owned()),
        ("queue-cap", "1".to_owned()),
    ]);
    let addr = server.addr;

    let mut clients = Vec::new();
    for i in 0..8u64 {
        let body = json!({ "csv": csv_text, "ontology": onto_text });
        let mut rng = StdRng::seed_from_u64(args.seed ^ i);
        clients.push(std::thread::spawn(move || {
            request_with_backoff(addr, &body, &mut rng)
        }));
    }
    let mut total_shed = 0u64;
    for client in clients {
        let (reply, shed) = client.join().expect("burst client");
        assert_eq!(sigma_keys(&reply.body), reference, "burst Σ bit-identical");
        total_shed += shed;
    }
    let metrics = request(addr, "GET", "/metrics", None).body;
    for name in ofd_serve::SERVE_COUNTERS {
        counter(&metrics, name); // presence: the schema pin, served live
    }
    assert!(counter(&metrics, "serve.admitted") >= 8, "all clients admitted eventually");
    assert_eq!(
        counter(&metrics, "serve.shed"),
        total_shed,
        "server-side shed count matches what clients saw"
    );
    println!(
        "phase shed: ok (8 clients converged, {total_shed} sheds, admitted {})",
        counter(&metrics, "serve.admitted")
    );

    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0), "clean drain exit");
}

/// Kill → restart → resend on one checkpoint dir; Σ must match `reference`
/// byte-for-byte whether the restarted run resumed or recomputed.
fn kill_restart_resend(
    tag: &str,
    ckpt: &std::path::Path,
    faults: Option<&str>,
    body: &Value,
    reference: &[(String, String, u64, u64)],
    kill_after: Duration,
) -> bool {
    let mut flags = vec![("checkpoint-dir", ckpt.display().to_string())];
    if let Some(spec) = faults {
        flags.push(("faults", spec.to_owned()));
    }
    let mut server = spawn_server(&flags);
    let addr = server.addr;

    // Fire the long request; the SIGKILL races it, so transport errors
    // and even a served reply are both legitimate outcomes.
    let inflight = {
        let body = body.clone();
        std::thread::spawn(move || try_request(addr, "POST", "/v1/discover", Some(&body)))
    };
    std::thread::sleep(kill_after);
    server.kill_hard();
    match inflight.join().expect("inflight client") {
        Err(_) => println!("phase {tag}: SIGKILL severed the in-flight connection (expected)"),
        Ok(reply) => println!("phase {tag}: reply won the race with status {}", reply.status),
    }

    // Restart on the same dir: byte-identical, resumed or not.
    let mut server = spawn_server(&flags);
    let reply = request(server.addr, "POST", "/v1/discover", Some(body));
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body.get("status").and_then(Value::as_str), Some("complete"));
    assert_eq!(
        sigma_keys(&reply.body),
        reference,
        "phase {tag}: post-restart Σ is byte-identical to the reference"
    );
    let resumed = reply
        .body
        .get("resumed_from_level")
        .and_then(Value::as_u64)
        .is_some();
    let metrics = request(server.addr, "GET", "/metrics", None).body;
    if resumed {
        assert!(counter(&metrics, "serve.resumed") >= 1, "resume is counted");
    }
    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0));
    resumed
}

/// The engines finish the probe workloads in milliseconds — far inside
/// any kill window. A deterministic per-candidate delay stretches
/// discovery to seconds without changing a single bit of the result, so
/// SIGKILL/SIGTERM reliably land mid-flight with snapshots on disk.
fn slow_engine_spec(seed: u64) -> String {
    format!("seed={seed},delay%1.0,delay-ms=1")
}

/// Phase 2: seeded SIGKILLs mid-discovery. At least one trial must
/// actually resume from a snapshot, or the soak proves nothing.
fn phase_sigkill(args: &Args, body: &Value, reference: &[(String, String, u64, u64)]) {
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_mul(7919));
    let spec = slow_engine_spec(args.seed);
    let mut resumes = 0u64;
    let trials = 3u64;
    for trial in 0..trials {
        let ckpt = args.dir.join(format!("sigkill{trial}"));
        let kill_after = Duration::from_millis(rng.random_range(300u64..1200));
        if kill_restart_resend("sigkill", &ckpt, Some(&spec), body, reference, kill_after) {
            resumes += 1;
        }
    }
    assert!(
        resumes >= 1,
        "no SIGKILL trial resumed from a snapshot — the kill window is not landing mid-flight"
    );
    println!("phase sigkill: ok ({resumes}/{trials} trials resumed from snapshots)");
}

/// Phase 3: SIGTERM drain. The admitted in-flight request is answered —
/// complete or a sound cancelled partial — and the child exits 0.
fn phase_drain(args: &Args, body: &Value, reference: &[(String, String, u64, u64)]) {
    let ckpt = args.dir.join("drain");
    let flags = [
        ("checkpoint-dir", ckpt.display().to_string()),
        ("faults", slow_engine_spec(args.seed)),
    ];
    let mut server = spawn_server(&flags);
    let addr = server.addr;

    let inflight = {
        let body = body.clone();
        std::thread::spawn(move || request(addr, "POST", "/v1/discover", Some(&body)))
    };
    std::thread::sleep(Duration::from_millis(250));
    server.terminate();

    let reply = inflight.join().expect("inflight client");
    assert_eq!(reply.status, 200, "admitted work is answered through the drain");
    let status = reply.body.get("status").and_then(Value::as_str).expect("status");
    if status == "incomplete" {
        assert_eq!(
            reply.body.get("interrupt").and_then(Value::as_str),
            Some("cancelled"),
            "drain cancels cooperatively"
        );
        for key in sigma_keys(&reply.body) {
            assert!(reference.contains(&key), "drained partial Σ entry {key:?} is sound");
        }
    } else {
        assert_eq!(sigma_keys(&reply.body), reference);
    }
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0), "drained child exits 0");

    // A restart on the drain's checkpoints finishes the job exactly.
    let mut server = spawn_server(&flags);
    let reply = request(server.addr, "POST", "/v1/discover", Some(body));
    assert_eq!(sigma_keys(&reply.body), reference, "post-drain restart is byte-identical");
    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0));
    println!("phase drain: ok (in-flight answered as {status}, restart byte-identical)");
}

/// Phase 4: snapshot-write faults under the same kill/restart game.
fn phase_snapshot_faults(args: &Args, body: &Value, reference: &[(String, String, u64, u64)]) {
    let spec = format!(
        "seed={},snapshot-io%0.2,snapshot-torn%0.15,delay%1.0,delay-ms=1",
        args.seed
    );
    let ckpt = args.dir.join("faults");
    kill_restart_resend(
        "faults",
        &ckpt,
        Some(&spec),
        body,
        reference,
        Duration::from_millis(400),
    );
    println!("phase faults: ok (byte-identical despite injected snapshot corruption)");
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("--server") {
        raw.next();
        let mut flags = Vec::new();
        while let Some(arg) = raw.next() {
            let name = arg.strip_prefix("--").expect("--flag VALUE").to_owned();
            let value = raw.next().unwrap_or_else(|| panic!("--{name} expects a value"));
            flags.push((name, value));
        }
        return server_mode(&flags);
    }

    let mut args = Args {
        seed: 42,
        rows: 2500,
        dir: std::env::temp_dir().join(format!("ofd_serve_probe_{}", std::process::id())),
    };
    while let Some(arg) = raw.next() {
        let mut value = |name: &str| raw.next().unwrap_or_else(|| panic!("{name} VALUE"));
        match arg.as_str() {
            "--seed" => args.seed = value("--seed").parse().expect("--seed expects an integer"),
            "--rows" => args.rows = value("--rows").parse().expect("--rows expects an integer"),
            "--dir" => args.dir = value("--dir").into(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&args.dir);

    // Medium payload for the shed burst; a wide lattice (more attributes)
    // for the kill/drain phases — rows barely move discovery wall time,
    // attribute count does, and the kill window must land mid-discovery
    // with completed-level snapshots already on disk.
    let (burst_csv, burst_onto) = dataset(args.rows.min(800), 6, args.seed);
    let burst_ref = reference_sigma(&burst_csv, &burst_onto);
    let (long_csv, long_onto) = dataset(args.rows, 9, args.seed);
    let t0 = Instant::now();
    let long_ref = reference_sigma(&long_csv, &long_onto);
    let long_wall = t0.elapsed();
    let long_body = json!({ "csv": &long_csv, "ontology": &long_onto });
    println!(
        "reference: burst |Σ|={}, long |Σ|={} in {:?} ({} rows, seed {})",
        burst_ref.len(),
        long_ref.len(),
        long_wall,
        args.rows,
        args.seed
    );

    phase_shed(&args, &burst_csv, &burst_onto, &burst_ref);
    phase_sigkill(&args, &long_body, &long_ref);
    phase_drain(&args, &long_body, &long_ref);
    phase_snapshot_faults(&args, &long_body, &long_ref);

    let _ = std::fs::remove_dir_all(&args.dir);
    println!("serve_probe: all phases consistent");
    ExitCode::SUCCESS
}
