//! Service-layer soak harness: hammer a real `ofd-serve` child process
//! with bursts, kill it mid-flight, drain it with SIGTERM, and corrupt
//! its snapshots — then assert every accepted request is answered, shed
//! requests carry honest backoff hints, and a restarted server produces
//! **byte-identical** results on the same checkpoint directory.
//!
//! ```text
//! serve_probe [--seed S] [--rows N] [--dir D]
//! serve_probe --router [--seed S] [--rows N] [--dir D]
//!             [--metrics-out PATH]                   # fleet soak
//! serve_probe --peers [--seed S] [--rows N] [--dir D]
//!             [--metrics-out PATH]                   # multi-host soak
//! serve_probe --chaos-net [--seed S] [--rows N] [--dir D]
//!             [--metrics-out PATH]                   # network chaos soak
//! serve_probe --server [--workers N] [--queue-cap N] [--budget-ms N]
//!             [--checkpoint-dir D] [--faults SPEC]
//!             [--addr HOST:PORT] [--peers LIST]      # child mode
//! ```
//!
//! The parent re-execs itself (`current_exe`) in `--server` mode so the
//! soak exercises real process boundaries: SIGKILL loses everything not
//! on disk, SIGTERM triggers the cooperative drain path, and the client
//! side sees genuine connection resets, not in-process shortcuts.
//!
//! Phases (default mode):
//! 1. **Shed** — burst a tiny-queue server; retried-with-backoff clients
//!    must all eventually succeed bit-identically, and `/metrics` must
//!    report the shed.
//! 2. **SIGKILL + resume** — kill the child mid-discovery at a seeded
//!    delay, restart on the same checkpoint dir, resend: Σ must be
//!    byte-identical to the uninterrupted reference.
//! 3. **SIGTERM drain** — the in-flight request is answered (complete or
//!    a sound cancelled partial) before the child exits 0.
//! 4. **Snapshot faults** — same kill/restart game with seeded snapshot
//!    I/O errors and torn writes; a lost checkpoint may cost recompute
//!    but must never change the answer.
//!
//! `--stream` runs the streaming soak instead: a seeded interleaving of
//! `/v1/append` / `/v1/retract` edits against a checkpointed session,
//! SIGKILLed mid-stream and resumed on a fresh process. Every reply must
//! be byte-identical to an uninterrupted reference run of the same edit
//! script, the final state must match a from-scratch validation of the
//! final rows, and a deliberately stale update must come back as a 409
//! that leaves the session usable. `--metrics-out` dumps the final
//! worker `/metrics` document for CI artifacts.
//!
//! `--router` runs the fleet soak instead: a supervised two-worker fleet
//! behind the shard router, all replicas sharing one checkpoint/catalog
//! root. It registers a dataset through the router's catalog API,
//! SIGKILLs the owning worker mid-discovery and requires the surviving
//! replica to **adopt** the dead worker's checkpoint on the *same*
//! still-open client connection, waits for the supervisor to respawn the
//! slot, then restarts the whole fleet and proves the catalog and every
//! answer survive byte-identically. `--metrics-out` dumps the final
//! router and worker `/metrics` documents as one JSON file for CI
//! artifacts.
//!
//! `--peers` runs the multi-host soak: two workers with **disjoint**
//! checkpoint roots (private filesystems, like separate hosts) and
//! mutual `--peers` lists, fronted by a probe-driven router over a
//! static fleet. It proves quorum catalog replication (a PUT lands on
//! both replicas or neither), cross-filesystem checkpoint shipping for
//! jobs and stream sessions (`resumed_from: "peer"`), SIGKILL failover
//! with re-execution fallback (`resumed_from: "none"`, byte-identical
//! reply on the original connection), ring ejection/readmission with
//! hysteresis, a sub-quorum PUT refused with no torn version, and
//! peer-to-peer catalog read repair.
//!
//! `--chaos-net` runs the network chaos soak: the same two-host topology
//! with a seeded in-process chaos proxy on the router→worker wire
//! injecting delays, mid-body resets, partial replies, blackholes and
//! connection refusals. Every routed reply must stay byte-identical to
//! the fault-free reference, a simulated coordinator death mid-fan-out
//! must leave no readable torn catalog version, the `serve.net.*`
//! counters must attribute every injected fault, and re-running with the
//! same seed must replay the identical toxic schedule.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ofd_core::{FaultPlan, Obs};
use ofd_datagen::{clinical, csv, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};
use ofd_serve::{
    termination_flag, Fleet, NetFaultProxy, Router, RouterConfig, ServeConfig, Server, Supervisor,
    SupervisorConfig, WorkerSpec,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde_json::{json, Value};

// ---------------------------------------------------------- child mode

/// Runs a real server in this process until SIGTERM/SIGINT, then drains.
/// The parent scrapes the `listening on ADDR` line to find the port.
fn server_mode(flags: &[(String, String)]) -> ExitCode {
    let get = |name: &str| flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str());
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    };
    if let Some(a) = get("addr") {
        cfg.addr = a.to_owned();
    }
    if let Some(spec) = get("peers") {
        cfg.peers = ofd_serve::parse_peer_list(spec).expect("valid --peers list");
    }
    if let Some(n) = get("workers") {
        cfg.workers = n.parse().expect("--workers N");
    }
    if let Some(n) = get("queue-cap") {
        cfg.queue_cap = n.parse().expect("--queue-cap N");
    }
    if let Some(ms) = get("budget-ms") {
        cfg.budget_ms = ms.parse().expect("--budget-ms N");
    }
    cfg.checkpoint_dir = get("checkpoint-dir").map(PathBuf::from);
    if let Some(ms) = get("head-timeout-ms") {
        cfg.head_timeout_ms = ms.parse().expect("--head-timeout-ms N");
    }
    if let Some(ms) = get("peer-timeout-ms") {
        cfg.peer_timeout_ms = ms.parse().expect("--peer-timeout-ms N");
    }
    if let Some(spec) = get("faults") {
        cfg.faults = FaultPlan::parse(spec).expect("valid fault spec");
        ofd_core::silence_injected_panics();
    }
    let server = Server::bind(cfg).expect("child bind");
    println!("listening on {}", server.addr());
    std::io::stdout().flush().expect("flush");
    let term = termination_flag();
    while !term.load(std::sync::atomic::Ordering::SeqCst) && !server.drain_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let summary = server.shutdown(Duration::from_secs(30));
    eprintln!(
        "child drained: admitted={} shed={} drained={} resumed={}",
        summary.admitted, summary.shed, summary.drained, summary.resumed
    );
    ExitCode::SUCCESS
}

// --------------------------------------------------------- child control

struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

/// Spawns `current_exe --server` with the given flags and waits for its
/// `listening on` line. `Err` means the child died before announcing
/// itself — e.g. a reserved fixed port was stolen between reservation
/// and bind — and the caller may retry with fresh ports.
fn try_spawn_server(flags: &[(&str, String)]) -> Result<ServerProc, String> {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--server");
    for (name, value) in flags {
        cmd.arg(format!("--{name}")).arg(value);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn server child: {e}"))?;
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().and_then(Result::ok).and_then(|line| {
        line.strip_prefix("listening on ")
            .and_then(|rest| rest.parse::<SocketAddr>().ok())
    });
    let Some(addr) = banner else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("child exited before announcing its address".into());
    };
    // Keep draining the pipe so the child never blocks on a full stdout.
    std::thread::spawn(move || for _ in lines {});
    Ok(ServerProc { child, addr })
}

fn spawn_server(flags: &[(&str, String)]) -> ServerProc {
    try_spawn_server(flags).expect("spawn server child")
}

/// Reserves an address by binding `127.0.0.1:0`, noting the port the OS
/// picked, and dropping the listener. Peer fleets need every address
/// known *before* any worker starts (the `--peers` lists are mutual), so
/// each worker binds a pre-reserved fixed port instead of `:0`. The tiny
/// reserve-to-bind race is real; callers retry with fresh ports.
fn reserve_port() -> SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve a port");
    listener.local_addr().expect("reserved port address")
}

impl ServerProc {
    /// SIGTERM on unix (cooperative drain); hard kill elsewhere.
    fn terminate(&mut self) {
        #[cfg(unix)]
        {
            extern "C" {
                fn kill(pid: i32, sig: i32) -> i32;
            }
            let rc = unsafe { kill(self.child.id() as i32, 15) };
            assert_eq!(rc, 0, "SIGTERM delivered");
        }
        #[cfg(not(unix))]
        self.child.kill().expect("kill child");
    }

    /// SIGKILL: the child gets no chance to drain — only the checkpoint
    /// directory survives.
    fn kill_hard(&mut self) {
        self.child.kill().expect("SIGKILL child");
        let _ = self.child.wait();
    }

    fn wait_exit(&mut self, timeout: Duration) -> Option<i32> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.code();
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

// ------------------------------------------------------------ tiny client

struct Reply {
    status: u16,
    retry_after_ms: Option<u64>,
    body: Value,
}

/// One request over a fresh connection. `Err` means the transport died
/// (expected while a child is being SIGKILLed), never a served error.
fn try_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Value>,
) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serialize"))
        .unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: probe\r\ncontent-length: {}\r\n\r\n",
        body_text.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body_text.as_bytes())?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 reply"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "truncated reply"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let parsed = if payload.is_empty() {
        Value::Null
    } else {
        serde_json::from_str(payload).unwrap_or(Value::Null)
    };
    let retry_after_ms = parsed.get("retry_after_ms").and_then(Value::as_u64);
    Ok(Reply {
        status,
        retry_after_ms,
        body: parsed,
    })
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&Value>) -> Reply {
    try_request(addr, method, path, body).expect("request against a live server")
}

/// Retries through 429/503 with jittered exponential backoff, honouring
/// the server's `retry_after_ms` hint as the floor. Returns the first
/// 2xx reply and how many times it was shed on the way.
fn request_with_backoff(addr: SocketAddr, body: &Value, rng: &mut StdRng) -> (Reply, u64) {
    let mut backoff = Duration::from_millis(25);
    let mut shed = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request(addr, "POST", "/v1/discover", Some(body));
        if reply.status == 200 {
            return (reply, shed);
        }
        assert!(
            reply.status == 429 || reply.status == 503,
            "only load shedding is retryable, got {}",
            reply.status
        );
        shed += 1;
        assert!(Instant::now() < deadline, "backoff retries must converge");
        let hint = reply.retry_after_ms.map(Duration::from_millis);
        let jitter = Duration::from_millis(rng.random_range(0u64..backoff.as_millis() as u64 + 1));
        std::thread::sleep(backoff.max(hint.unwrap_or(Duration::ZERO)) + jitter);
        backoff = (backoff * 2).min(Duration::from_secs(2));
    }
}

// --------------------------------------------------------------- fixtures

fn dataset(rows: usize, attrs: usize, seed: u64) -> (String, String) {
    let ds = clinical(&PresetConfig {
        n_rows: rows,
        n_attrs: attrs,
        n_ofds: 2,
        seed,
        ..PresetConfig::default()
    });
    (
        csv::write_csv(&ds.clean),
        ofd_ontology::write_ontology(&ds.full_ontology),
    )
}

/// Sorted `(lhs, rhs, support bits, level)` keys from a served reply.
fn sigma_keys(reply: &Value) -> Vec<(String, String, u64, u64)> {
    let mut keys: Vec<_> = reply
        .get("ofds")
        .and_then(Value::as_array)
        .expect("ofds array")
        .iter()
        .map(|o| {
            let lhs: Vec<&str> = o
                .get("lhs")
                .and_then(Value::as_array)
                .expect("lhs")
                .iter()
                .map(|v| v.as_str().expect("lhs name"))
                .collect();
            (
                lhs.join(","),
                o.get("rhs").and_then(Value::as_str).expect("rhs").to_string(),
                o.get("support_bits").and_then(Value::as_u64).expect("bits"),
                o.get("level").and_then(Value::as_u64).expect("level"),
            )
        })
        .collect();
    keys.sort();
    keys
}

/// Uninterrupted in-process ground truth for the same payload.
fn reference_sigma(csv_text: &str, onto_text: &str) -> Vec<(String, String, u64, u64)> {
    let rel = csv::read_csv(csv_text).expect("csv");
    let onto = ofd_ontology::parse_ontology(onto_text).expect("onto");
    let out = FastOfd::new(&rel, &onto).options(DiscoveryOptions::new()).run();
    assert!(out.complete, "reference run is uninterrupted");
    let schema = rel.schema();
    let mut keys: Vec<_> = out
        .ofds
        .iter()
        .map(|d| {
            let lhs: Vec<&str> = d.ofd.lhs.iter().map(|a| schema.name(a)).collect();
            (
                lhs.join(","),
                schema.name(d.ofd.rhs).to_string(),
                d.support.to_bits(),
                d.level as u64,
            )
        })
        .collect();
    keys.sort();
    keys
}

fn counter(metrics: &Value, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metrics expose pinned counter {name}"))
}

// ----------------------------------------------------------------- phases

struct Args {
    seed: u64,
    rows: usize,
    dir: PathBuf,
}

/// Phase 1: a burst over a tiny admission queue. Every client converges
/// through backoff, shed replies carried hints, and `/metrics` owns up.
fn phase_shed(args: &Args, csv_text: &str, onto_text: &str, reference: &[(String, String, u64, u64)]) {
    let mut server = spawn_server(&[
        ("workers", "1".to_owned()),
        ("queue-cap", "1".to_owned()),
    ]);
    let addr = server.addr;

    let mut clients = Vec::new();
    for i in 0..8u64 {
        let body = json!({ "csv": csv_text, "ontology": onto_text });
        let mut rng = StdRng::seed_from_u64(args.seed ^ i);
        clients.push(std::thread::spawn(move || {
            request_with_backoff(addr, &body, &mut rng)
        }));
    }
    let mut total_shed = 0u64;
    for client in clients {
        let (reply, shed) = client.join().expect("burst client");
        assert_eq!(sigma_keys(&reply.body), reference, "burst Σ bit-identical");
        total_shed += shed;
    }
    let metrics = request(addr, "GET", "/metrics", None).body;
    for name in ofd_serve::SERVE_COUNTERS {
        counter(&metrics, name); // presence: the schema pin, served live
    }
    assert!(counter(&metrics, "serve.admitted") >= 8, "all clients admitted eventually");
    assert_eq!(
        counter(&metrics, "serve.shed"),
        total_shed,
        "server-side shed count matches what clients saw"
    );
    println!(
        "phase shed: ok (8 clients converged, {total_shed} sheds, admitted {})",
        counter(&metrics, "serve.admitted")
    );

    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0), "clean drain exit");
}

/// Kill → restart → resend on one checkpoint dir; Σ must match `reference`
/// byte-for-byte whether the restarted run resumed or recomputed.
fn kill_restart_resend(
    tag: &str,
    ckpt: &std::path::Path,
    faults: Option<&str>,
    body: &Value,
    reference: &[(String, String, u64, u64)],
    kill_after: Duration,
) -> bool {
    let mut flags = vec![("checkpoint-dir", ckpt.display().to_string())];
    if let Some(spec) = faults {
        flags.push(("faults", spec.to_owned()));
    }
    let mut server = spawn_server(&flags);
    let addr = server.addr;

    // Fire the long request; the SIGKILL races it, so transport errors
    // and even a served reply are both legitimate outcomes.
    let inflight = {
        let body = body.clone();
        std::thread::spawn(move || try_request(addr, "POST", "/v1/discover", Some(&body)))
    };
    std::thread::sleep(kill_after);
    server.kill_hard();
    match inflight.join().expect("inflight client") {
        Err(_) => println!("phase {tag}: SIGKILL severed the in-flight connection (expected)"),
        Ok(reply) => println!("phase {tag}: reply won the race with status {}", reply.status),
    }

    // Restart on the same dir: byte-identical, resumed or not.
    let mut server = spawn_server(&flags);
    let reply = request(server.addr, "POST", "/v1/discover", Some(body));
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body.get("status").and_then(Value::as_str), Some("complete"));
    assert_eq!(
        sigma_keys(&reply.body),
        reference,
        "phase {tag}: post-restart Σ is byte-identical to the reference"
    );
    let resumed = reply
        .body
        .get("resumed_from_level")
        .and_then(Value::as_u64)
        .is_some();
    let metrics = request(server.addr, "GET", "/metrics", None).body;
    if resumed {
        assert!(counter(&metrics, "serve.resumed") >= 1, "resume is counted");
    }
    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0));
    resumed
}

/// The engines finish the probe workloads in milliseconds — far inside
/// any kill window. A deterministic per-candidate delay stretches
/// discovery to seconds without changing a single bit of the result, so
/// SIGKILL/SIGTERM reliably land mid-flight with snapshots on disk.
fn slow_engine_spec(seed: u64) -> String {
    format!("seed={seed},delay%1.0,delay-ms=1")
}

/// Phase 2: seeded SIGKILLs mid-discovery. At least one trial must
/// actually resume from a snapshot, or the soak proves nothing.
fn phase_sigkill(args: &Args, body: &Value, reference: &[(String, String, u64, u64)]) {
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_mul(7919));
    let spec = slow_engine_spec(args.seed);
    let mut resumes = 0u64;
    let trials = 3u64;
    for trial in 0..trials {
        let ckpt = args.dir.join(format!("sigkill{trial}"));
        let kill_after = Duration::from_millis(rng.random_range(300u64..1200));
        if kill_restart_resend("sigkill", &ckpt, Some(&spec), body, reference, kill_after) {
            resumes += 1;
        }
    }
    assert!(
        resumes >= 1,
        "no SIGKILL trial resumed from a snapshot — the kill window is not landing mid-flight"
    );
    println!("phase sigkill: ok ({resumes}/{trials} trials resumed from snapshots)");
}

/// Phase 3: SIGTERM drain. The admitted in-flight request is answered —
/// complete or a sound cancelled partial — and the child exits 0.
fn phase_drain(args: &Args, body: &Value, reference: &[(String, String, u64, u64)]) {
    let ckpt = args.dir.join("drain");
    let flags = [
        ("checkpoint-dir", ckpt.display().to_string()),
        ("faults", slow_engine_spec(args.seed)),
    ];
    let mut server = spawn_server(&flags);
    let addr = server.addr;

    let inflight = {
        let body = body.clone();
        std::thread::spawn(move || request(addr, "POST", "/v1/discover", Some(&body)))
    };
    std::thread::sleep(Duration::from_millis(250));
    server.terminate();

    let reply = inflight.join().expect("inflight client");
    assert_eq!(reply.status, 200, "admitted work is answered through the drain");
    let status = reply.body.get("status").and_then(Value::as_str).expect("status");
    if status == "incomplete" {
        assert_eq!(
            reply.body.get("interrupt").and_then(Value::as_str),
            Some("cancelled"),
            "drain cancels cooperatively"
        );
        for key in sigma_keys(&reply.body) {
            assert!(reference.contains(&key), "drained partial Σ entry {key:?} is sound");
        }
    } else {
        assert_eq!(sigma_keys(&reply.body), reference);
    }
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0), "drained child exits 0");

    // A restart on the drain's checkpoints finishes the job exactly.
    let mut server = spawn_server(&flags);
    let reply = request(server.addr, "POST", "/v1/discover", Some(body));
    assert_eq!(sigma_keys(&reply.body), reference, "post-drain restart is byte-identical");
    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0));
    println!("phase drain: ok (in-flight answered as {status}, restart byte-identical)");
}

/// Phase 4: snapshot-write faults under the same kill/restart game.
fn phase_snapshot_faults(args: &Args, body: &Value, reference: &[(String, String, u64, u64)]) {
    let spec = format!(
        "seed={},snapshot-io%0.2,snapshot-torn%0.15,delay%1.0,delay-ms=1",
        args.seed
    );
    let ckpt = args.dir.join("faults");
    kill_restart_resend(
        "faults",
        &ckpt,
        Some(&spec),
        body,
        reference,
        Duration::from_millis(400),
    );
    println!("phase faults: ok (byte-identical despite injected snapshot corruption)");
}

// -------------------------------------------------------- streaming soak

/// One streaming edit, kept alongside a local row mirror so the final
/// state can be re-validated from scratch.
enum StreamEdit {
    Append(Vec<String>),
    Retract(usize),
    Update { row: usize, attr: String, value: String },
}

/// A consequent attribute that is not also an antecedent of any planted
/// OFD — the only cell the update path may touch.
fn updatable_rhs(ds: &ofd_datagen::Dataset) -> ofd_core::AttrId {
    ds.ofds
        .iter()
        .map(|o| o.rhs)
        .find(|&r| !ds.ofds.iter().any(|o| o.lhs.contains(r)))
        .expect("the clinical preset plants an update-safe consequent")
}

/// Seeded edit script over the planted dataset: duplicated rows, novel
/// senseless consequents, retracts and consequent updates. The first
/// three edits are one of each kind so every incremental counter moves.
fn stream_script(ds: &ofd_datagen::Dataset, seed: u64, count: usize) -> Vec<StreamEdit> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31907));
    let schema = ds.clean.schema();
    let rhs = ds.ofds[0].rhs;
    let upd = updatable_rhs(ds);
    let upd_name = schema.name(upd).to_string();
    let base_rows = ds.clean.n_rows();
    let mut n_rows = base_rows;
    let mut edits = Vec::with_capacity(count);
    for i in 0..count {
        let kind = if i < 3 { i as u64 * 4 } else { rng.random_range(0u64..10) };
        match kind {
            0..=3 => {
                let mut cells: Vec<String> = ds
                    .clean
                    .row_texts(rng.random_range(0..base_rows as u64) as usize)
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                if rng.random_range(0u64..3) == 0 {
                    cells[rhs.index()] = format!("novel-{i}");
                }
                edits.push(StreamEdit::Append(cells));
                n_rows += 1;
            }
            4..=6 => {
                let value = if rng.random_range(0u64..4) == 0 {
                    format!("novel-{i}")
                } else {
                    ds.clean
                        .text(rng.random_range(0..base_rows as u64) as usize, upd)
                        .to_string()
                };
                edits.push(StreamEdit::Update {
                    row: rng.random_range(0..n_rows as u64) as usize,
                    attr: upd_name.clone(),
                    value,
                });
            }
            _ if n_rows > 1 => {
                edits.push(StreamEdit::Retract(rng.random_range(0..n_rows as u64) as usize));
                n_rows -= 1;
            }
            _ => {}
        }
    }
    edits
}

/// The `/v1/append` or `/v1/retract` request for one edit.
fn stream_request(base: &Value, edit: &StreamEdit) -> (&'static str, Value) {
    let mut body = base.clone();
    let Value::Object(fields) = &mut body else {
        unreachable!("stream base body is an object")
    };
    match edit {
        StreamEdit::Append(cells) => {
            fields.push(("rows".into(), json!([cells.clone()])));
            ("/v1/append", body)
        }
        StreamEdit::Retract(row) => {
            fields.push(("rows".into(), json!([*row as u64])));
            ("/v1/retract", body)
        }
        StreamEdit::Update { row, attr, value } => {
            fields.push((
                "updates".into(),
                json!([{"row": *row as u64, "attr": attr, "value": value}]),
            ));
            ("/v1/append", body)
        }
    }
}

/// Serialized reply with `resumed_from_seq` blanked: the one field that
/// legitimately differs between the killed run and the reference run.
fn normalized_reply(mut reply: Value) -> String {
    if let Value::Object(fields) = &mut reply {
        for (name, value) in fields.iter_mut() {
            if name == "resumed_from_seq" {
                *value = Value::Null;
            }
        }
    }
    serde_json::to_string(&reply).expect("serialize reply")
}

/// `--stream`: seeded edit soak with a mid-stream SIGKILL. The resumed
/// run must be byte-identical to an uninterrupted reference, the final
/// state must match from-scratch validation, and conflicts must be 409s
/// that leave the session usable.
fn phase_stream(args: &Args, metrics_out: Option<&Path>) {
    let ds = clinical(&PresetConfig {
        n_rows: args.rows,
        n_attrs: 5,
        n_ofds: 2,
        seed: args.seed,
        ..PresetConfig::default()
    });
    let schema = ds.clean.schema();
    let specs: Vec<String> = ds
        .ofds
        .iter()
        .map(|o| {
            let lhs: Vec<&str> = o.lhs.iter().map(|a| schema.name(a)).collect();
            format!("{}->{}", lhs.join(","), schema.name(o.rhs))
        })
        .collect();
    let base = json!({
        "csv": csv::write_csv(&ds.clean),
        "ontology": ofd_ontology::write_ontology(&ds.full_ontology),
        "ofds": specs.clone(),
    });
    let edits = stream_script(&ds, args.seed, 160);
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_mul(48271));
    let kill_at = rng.random_range(edits.len() as u64 / 4..(edits.len() as u64 * 3) / 4) as usize;

    // Reference: the full script against one uninterrupted server.
    let ref_dir = args.dir.join("stream-ref");
    let mut server = spawn_server(&[("checkpoint-dir", ref_dir.display().to_string())]);
    let mut reference = Vec::with_capacity(edits.len());
    for edit in &edits {
        let (path, body) = stream_request(&base, edit);
        let reply = request(server.addr, "POST", path, Some(&body));
        assert_eq!(reply.status, 200, "reference edit accepted");
        reference.push(normalized_reply(reply.body));
    }
    let ref_metrics = request(server.addr, "GET", "/metrics", None).body;
    assert!(counter(&ref_metrics, "serve.stream.sessions") >= 1, "session opened");
    assert_eq!(
        counter(&ref_metrics, "serve.stream.edits"),
        edits.len() as u64,
        "every reference edit is counted"
    );
    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0), "reference drains");
    println!(
        "phase stream: reference run complete ({} edits, kill scheduled at {kill_at})",
        edits.len()
    );

    // Soak: same script, SIGKILL between edits, resume on a new process.
    let soak_dir = args.dir.join("stream-soak");
    let flags = [("checkpoint-dir", soak_dir.display().to_string())];
    let mut server = spawn_server(&flags);
    for (i, edit) in edits[..kill_at].iter().enumerate() {
        let (path, body) = stream_request(&base, edit);
        let reply = request(server.addr, "POST", path, Some(&body));
        assert_eq!(reply.status, 200);
        assert_eq!(
            normalized_reply(reply.body),
            reference[i],
            "pre-kill edit {i} is byte-identical to the reference"
        );
    }
    server.kill_hard();

    let mut server = spawn_server(&flags);
    for (i, edit) in edits[kill_at..].iter().enumerate() {
        let (path, body) = stream_request(&base, edit);
        let reply = request(server.addr, "POST", path, Some(&body));
        assert_eq!(reply.status, 200, "post-restart edit accepted");
        if i == 0 {
            assert_eq!(
                reply.body.get("resumed_from_seq").and_then(Value::as_u64),
                Some(kill_at as u64),
                "the first post-restart edit adopts the session snapshot"
            );
        }
        assert_eq!(
            normalized_reply(reply.body),
            reference[kill_at + i],
            "post-restart edit {} is byte-identical to the reference",
            kill_at + i
        );
    }

    // Independent ground truth: replay the script on a local row mirror
    // and re-validate the final rows from scratch.
    let mut mirror: Vec<Vec<String>> = (0..ds.clean.n_rows())
        .map(|r| ds.clean.row_texts(r).iter().map(|s| s.to_string()).collect())
        .collect();
    for edit in &edits {
        match edit {
            StreamEdit::Append(cells) => mirror.push(cells.clone()),
            StreamEdit::Retract(row) => {
                mirror.swap_remove(*row);
            }
            StreamEdit::Update { row, attr, value } => {
                let col = schema.attr(attr).expect("script attr").index();
                mirror[*row][col] = value.clone();
            }
        }
    }
    let names: Vec<&str> = schema.attrs().map(|a| schema.name(a)).collect();
    let row_refs: Vec<Vec<&str>> = mirror
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let final_rel =
        ofd_core::Relation::from_rows(names, row_refs.iter().map(Vec::as_slice)).expect("mirror");
    let validator = ofd_core::Validator::new(&final_rel, &ds.full_ontology);
    let expect: usize = ds.ofds.iter().map(|o| validator.check(o).violation_count()).sum();
    let final_reply: Value =
        serde_json::from_str(reference.last().expect("non-empty script")).expect("final reply");
    assert_eq!(
        final_reply.get("violations").and_then(Value::as_u64),
        Some(expect as u64),
        "final session state matches from-scratch validation"
    );
    assert_eq!(
        final_reply.get("n_rows").and_then(Value::as_u64),
        Some(mirror.len() as u64),
        "final row count matches the mirror"
    );

    // Conflict probe: a stale optimistic update is a 409 and the session
    // keeps serving afterwards.
    let upd_name = schema.name(updatable_rhs(&ds)).to_string();
    let mut stale = base.clone();
    if let Value::Object(fields) = &mut stale {
        fields.push((
            "updates".into(),
            json!([{"row": 0, "attr": &upd_name, "value": "x", "old": "definitely-not-current"}]),
        ));
    }
    let reply = request(server.addr, "POST", "/v1/append", Some(&stale));
    assert_eq!(reply.status, 409, "a stale update is a conflict, not a 500");
    let (path, body) = stream_request(&base, &StreamEdit::Append(mirror[0].clone()));
    let reply = request(server.addr, "POST", path, Some(&body));
    assert_eq!(reply.status, 200, "the session survives a conflict");
    assert_eq!(
        reply.body.get("n_rows").and_then(Value::as_u64),
        Some(mirror.len() as u64 + 1),
        "post-conflict edits keep applying"
    );

    // The respawned worker's ledger: resume observed, every live edit
    // counted, conflicts owned up to. (Replayed edits are deliberately
    // not re-counted.)
    let metrics = request(server.addr, "GET", "/metrics", None).body;
    let live_edits = (edits.len() - kill_at) as u64 + 1; // + post-conflict append
    assert!(counter(&metrics, "serve.stream.resumed") >= 1, "resume is counted");
    assert_eq!(counter(&metrics, "serve.stream.edits"), live_edits, "live edits counted");
    assert_eq!(
        counter(&metrics, "incremental.inserts")
            + counter(&metrics, "incremental.retracts")
            + counter(&metrics, "incremental.updates"),
        live_edits,
        "every live edit lands in exactly one incremental counter"
    );
    assert!(counter(&metrics, "serve.stream.conflicts") >= 1, "conflict counted");
    assert!(counter(&metrics, "incremental.stale_updates") >= 1, "stale update counted");

    if let Some(path) = metrics_out {
        let doc = json!({
            "worker": metrics,
            "reference_worker": ref_metrics,
            "edits": edits.len() as u64,
            "kill_at": kill_at as u64,
        });
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("metrics-out parent dir");
        }
        let text = serde_json::to_string_pretty(&doc).expect("serialize metrics") + "\n";
        std::fs::write(path, text).expect("write metrics-out");
        println!("phase stream: metrics written to {}", path.display());
    }
    server.terminate();
    assert_eq!(server.wait_exit(Duration::from_secs(30)), Some(0), "soak drains");
    println!(
        "phase stream: ok ({} edits byte-identical across SIGKILL at {kill_at}, final violations {expect})",
        edits.len()
    );
}

// ------------------------------------------------------ router fleet soak

/// Spawns a supervised two-worker fleet sharing `root` for checkpoints
/// and the catalog, fronted by the shard router. The same `Obs` handle
/// feeds supervisor and router so `serve.router.*` counters survive a
/// full-fleet restart (the processes die; the soak's ledger does not).
fn start_fleet(args: &Args, obs: &Obs, root: &Path) -> Router {
    let spec = WorkerSpec {
        program: std::env::current_exe().expect("current_exe"),
        args: vec![
            "--server".into(),
            "--checkpoint-dir".into(),
            root.display().to_string(),
            "--faults".into(),
            slow_engine_spec(args.seed),
        ],
    };
    let mut sup_cfg = SupervisorConfig::new(spec);
    sup_cfg.workers = 2;
    sup_cfg.obs = obs.clone();
    let supervisor = Supervisor::start(sup_cfg).expect("supervisor start");
    let router_cfg = RouterConfig {
        catalog_dir: Some(root.join("catalog")),
        obs: obs.clone(),
        ..RouterConfig::default()
    };
    Router::bind(router_cfg, Fleet::Supervised(supervisor)).expect("router bind")
}

fn supervised(router: &Router) -> &Supervisor {
    match router.fleet() {
        Fleet::Supervised(s) => s,
        Fleet::Static(_) => unreachable!("the fleet soak always supervises its workers"),
    }
}

/// A counter scraped straight off one worker's `/metrics` (0 when the
/// worker is unreachable — e.g. freshly killed).
fn worker_counter(addr: SocketAddr, name: &str) -> u64 {
    try_request(addr, "GET", "/metrics", None)
        .ok()
        .and_then(|r| {
            r.body
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(Value::as_u64)
        })
        .unwrap_or(0)
}

/// One SIGKILL-adoption trial: fire a by-reference discovery through the
/// router, find the worker that admitted it by watching `serve.admitted`
/// move, SIGKILL that owner mid-flight, and require the router to answer
/// the *original* client connection byte-identically via the surviving
/// replica. Returns whether the survivor adopted the dead worker's
/// checkpoint (resumed mid-level) — at least one trial must.
fn router_kill_trial(
    router_addr: SocketAddr,
    sup: &Supervisor,
    version: u64,
    reference: &[(String, String, u64, u64)],
    rng: &mut StdRng,
) -> bool {
    let reference_str = format!("clinical@{version}");
    let body = json!({ "dataset": &reference_str });
    let before: Vec<(usize, SocketAddr, u64)> = sup
        .addrs()
        .iter()
        .enumerate()
        .filter_map(|(slot, addr)| addr.map(|a| (slot, a, worker_counter(a, "serve.admitted"))))
        .collect();
    assert_eq!(before.len(), 2, "both replicas live before the trial");

    let inflight = {
        let body = body.clone();
        std::thread::spawn(move || request(router_addr, "POST", "/v1/discover", Some(&body)))
    };

    // The admitting worker is the ring owner; metrics give it away.
    let deadline = Instant::now() + Duration::from_secs(10);
    let owner = loop {
        if let Some(&(slot, _, _)) = before
            .iter()
            .find(|&&(_, addr, n)| worker_counter(addr, "serve.admitted") > n)
        {
            break slot;
        }
        assert!(Instant::now() < deadline, "no worker admitted the in-flight request");
        std::thread::sleep(Duration::from_millis(10));
    };

    // Let discovery run into the snapshot-writing window, then pull the
    // rug. The supervisor notices, respawns; the router fails over.
    std::thread::sleep(Duration::from_millis(rng.random_range(300u64..1000)));
    let owner_pid = sup.pids()[owner];
    let killed = sup.kill_worker(owner);

    let reply = inflight.join().expect("inflight client");
    assert_eq!(reply.status, 200, "failover answers the original connection");
    assert_eq!(reply.body.get("status").and_then(Value::as_str), Some("complete"));
    assert_eq!(
        sigma_keys(&reply.body),
        reference,
        "failover Σ is byte-identical to the reference"
    );
    assert_eq!(
        reply.body.get("dataset").and_then(Value::as_str),
        Some(reference_str.as_str()),
        "the reply names the resolved dataset version"
    );
    let adopted = reply
        .body
        .get("resumed_from_level")
        .and_then(Value::as_u64)
        .is_some();

    // The slot must rejoin the ring before the next trial leans on it.
    if killed {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            match sup.pids()[owner] {
                Some(pid) if Some(pid) != owner_pid => break,
                _ => {}
            }
            assert!(Instant::now() < deadline, "killed worker never respawned");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    adopted
}

/// `--router`: the whole fleet game — catalog registration through the
/// router, SIGKILL + checkpoint adoption on the surviving replica,
/// supervisor respawns, and a full-fleet restart that must preserve the
/// catalog and every answer.
fn phase_router(args: &Args, metrics_out: Option<&Path>) {
    let obs = Obs::enabled();
    let root = args.dir.join("fleet");
    let router = start_fleet(args, &obs, &root);
    let addr = router.addr();

    // Register v1 through the router and discover it by bare reference.
    let (csv_v1, onto_v1) = dataset(args.rows, 9, args.seed);
    let ref_v1 = reference_sigma(&csv_v1, &onto_v1);
    let put = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_v1, "ontology": &onto_v1 })),
    );
    assert_eq!(put.status, 200, "catalog PUT through the router");
    assert_eq!(put.body.get("version").and_then(Value::as_u64), Some(1));
    let reply = request(addr, "POST", "/v1/discover", Some(&json!({ "dataset": "clinical" })));
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body.get("dataset").and_then(Value::as_str),
        Some("clinical@1"),
        "a bare reference resolves to the newest version"
    );
    assert_eq!(sigma_keys(&reply.body), ref_v1, "by-reference Σ matches the reference");
    println!("phase router: v1 registered and discovered by reference (|Σ|={})", ref_v1.len());

    // SIGKILL trials, each on a fresh catalog version so every trial
    // starts from a cold checkpoint directory.
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_mul(6271));
    let trials = 3u64;
    let mut adoptions = 0u64;
    for trial in 0..trials {
        let (csv_t, onto_t) = dataset(args.rows, 9, args.seed ^ (trial + 1));
        let ref_t = reference_sigma(&csv_t, &onto_t);
        let put = request(
            addr,
            "PUT",
            "/v1/datasets/clinical",
            Some(&json!({ "csv": &csv_t, "ontology": &onto_t })),
        );
        let version = put.body.get("version").and_then(Value::as_u64).expect("version");
        assert_eq!(version, trial + 2, "versions are append-only");
        let adopted = router_kill_trial(addr, supervised(&router), version, &ref_t, &mut rng);
        println!(
            "phase router: trial {trial} survived its SIGKILL ({})",
            if adopted { "checkpoint adopted mid-level" } else { "survivor recomputed" }
        );
        adoptions += u64::from(adopted);
    }
    assert!(
        adoptions >= 1,
        "no trial adopted a dead worker's checkpoint — the kill window is not landing mid-flight"
    );

    // Full-fleet restart on the same root: catalog and answers survive.
    let workers_before: Vec<Value> = supervised(&router)
        .addrs()
        .into_iter()
        .flatten()
        .filter_map(|a| try_request(a, "GET", "/metrics", None).ok().map(|r| r.body))
        .collect();
    router.shutdown();
    let router = start_fleet(args, &obs, &root);
    let addr = router.addr();
    let described = request(addr, "GET", "/v1/datasets/clinical", None);
    assert_eq!(described.status, 200);
    assert_eq!(
        described.body.get("version").and_then(Value::as_u64),
        Some(trials + 1),
        "every registered version survives the restart"
    );
    let reply = request(addr, "POST", "/v1/discover", Some(&json!({ "dataset": "clinical@1" })));
    assert_eq!(reply.status, 200);
    assert_eq!(
        sigma_keys(&reply.body),
        ref_v1,
        "v1 is byte-identical across a full-fleet restart"
    );

    // The router's counters are the soak's ledger; pin them.
    let snap = obs.snapshot();
    let count = |name: &str| snap.counter(name).unwrap_or_else(|| panic!("counter {name} present"));
    assert!(count("serve.router.routed") >= trials + 2, "every reply was routed");
    assert!(count("serve.router.retried") >= 1, "failover retried at least once");
    assert!(count("serve.router.respawned") >= trials, "every killed worker respawned");
    assert!(count("serve.router.adopted") >= 1, "adoption was observed end to end");

    if let Some(path) = metrics_out {
        let workers_final: Vec<Value> = supervised(&router)
            .addrs()
            .into_iter()
            .flatten()
            .filter_map(|a| try_request(a, "GET", "/metrics", None).ok().map(|r| r.body))
            .collect();
        let doc = json!({
            "router": request(addr, "GET", "/metrics", None).body,
            "workers": workers_final,
            "workers_before_restart": workers_before,
        });
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("metrics-out parent dir");
        }
        let text = serde_json::to_string_pretty(&doc).expect("serialize metrics") + "\n";
        std::fs::write(path, text).expect("write metrics-out");
        println!("phase router: metrics written to {}", path.display());
    }
    router.shutdown();
    println!(
        "phase router: ok ({adoptions}/{trials} trials adopted, routed={} retried={} respawned={})",
        count("serve.router.routed"),
        count("serve.router.retried"),
        count("serve.router.respawned"),
    );
}

// ------------------------------------------------------- peer fleet soak

/// One worker of a static multi-host fleet: its process handle plus the
/// flags needed to restart it on the *same* fixed address and the *same*
/// private checkpoint root.
struct PeerWorker {
    proc: ServerProc,
    flags: Vec<(&'static str, String)>,
}

impl PeerWorker {
    fn addr(&self) -> SocketAddr {
        self.proc.addr
    }

    /// Restarts the worker on its fixed address after a SIGKILL. The
    /// port was just freed by the kill; a short retry loop rides out any
    /// lingering OS-level reluctance to rebind it.
    fn restart(&mut self) {
        for attempt in 0..20u32 {
            match try_spawn_server(&self.flags) {
                Ok(proc) => {
                    self.proc = proc;
                    return;
                }
                Err(e) => {
                    eprintln!("peer fleet: restart attempt {attempt} failed: {e}");
                    std::thread::sleep(Duration::from_millis(150));
                }
            }
        }
        panic!("killed worker never rebound its fixed address");
    }
}

/// Spawns `n` workers with mutual `--peers` lists and **disjoint**
/// checkpoint roots — each worker owns a private filesystem, exactly
/// like separate hosts. Addresses are reserved up front so every worker
/// can name its siblings at spawn time; a stolen port retries the whole
/// fleet on fresh reservations. `extra_flags` ride along on every
/// worker (the peer soak slows the engines; the chaos soak tightens
/// peer timeouts instead).
fn spawn_peer_fleet(root: &Path, n: usize, extra_flags: &[(&'static str, String)]) -> Vec<PeerWorker> {
    'attempt: for attempt in 0..3u32 {
        let addrs: Vec<SocketAddr> = (0..n).map(|_| reserve_port()).collect();
        let mut fleet = Vec::with_capacity(n);
        for (i, addr) in addrs.iter().enumerate() {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let mut flags = vec![
                ("addr", addr.to_string()),
                ("peers", peers),
                ("checkpoint-dir", root.join(format!("host-{i}")).display().to_string()),
            ];
            flags.extend(extra_flags.iter().cloned());
            match try_spawn_server(&flags) {
                Ok(proc) => fleet.push(PeerWorker { proc, flags }),
                Err(e) => {
                    eprintln!("peer fleet: spawn attempt {attempt} failed: {e}");
                    for worker in &mut fleet {
                        worker.proc.kill_hard();
                    }
                    continue 'attempt;
                }
            }
        }
        return fleet;
    }
    panic!("could not bind the peer fleet on reserved ports after 3 attempts");
}

/// `--peers`: the multi-host game. Two workers with **disjoint**
/// checkpoint roots and mutual peer lists behind a probe-driven router:
/// quorum-replicated catalog PUTs, cross-filesystem checkpoint shipping
/// (`resumed_from: "peer"`), SIGKILL failover with re-execution fallback
/// (`resumed_from: "none"`), ring ejection/readmission with hysteresis,
/// a sub-quorum PUT refused with no torn version, and peer-to-peer
/// catalog read repair. Every served Σ must be byte-identical to the
/// uninterrupted in-process reference.
fn phase_peer_fleet(args: &Args, metrics_out: Option<&Path>) {
    let obs = Obs::enabled();
    let root = args.dir.join("peer-fleet");
    let mut fleet = spawn_peer_fleet(&root, 2, &[("faults", slow_engine_spec(args.seed))]);
    let worker_addrs: Vec<SocketAddr> = fleet.iter().map(PeerWorker::addr).collect();
    let router_cfg = RouterConfig {
        probe_interval_ms: 100,
        obs: obs.clone(),
        ..RouterConfig::default()
    };
    let router = Router::bind(router_cfg, Fleet::Static(worker_addrs.clone())).expect("router bind");
    let addr = router.addr();
    let snap_count = |name: &str| obs.snapshot().counter(name).unwrap_or(0);

    // v1: a quorum PUT through the router lands on every replica, and a
    // by-reference discovery through the router matches the reference.
    let (csv_v1, onto_v1) = dataset(args.rows, 9, args.seed);
    let ref_v1 = reference_sigma(&csv_v1, &onto_v1);
    let put = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_v1, "ontology": &onto_v1 })),
    );
    assert_eq!(put.status, 200, "quorum PUT with the full fleet live");
    assert_eq!(put.body.get("version").and_then(Value::as_u64), Some(1));
    assert_eq!(put.body.get("replicas").and_then(Value::as_u64), Some(2), "both replicas acked");
    for &w in &worker_addrs {
        let described = request(w, "GET", "/v1/datasets/clinical", None);
        assert_eq!(described.status, 200, "replica {w} serves the replicated dataset");
        assert_eq!(described.body.get("version").and_then(Value::as_u64), Some(1));
    }
    let reply = request(addr, "POST", "/v1/discover", Some(&json!({ "dataset": "clinical@1" })));
    assert_eq!(reply.status, 200);
    assert_eq!(sigma_keys(&reply.body), ref_v1, "routed Σ matches the reference");
    println!("phase peers: v1 replicated to both hosts and discovered (|Σ|={})", ref_v1.len());

    // v2: cross-filesystem checkpoint shipping. Run the job to
    // completion on host 0, then send the identical request to host 1 —
    // whose checkpoint root has never seen this job. It must ship the
    // snapshot from its peer, not recompute from scratch.
    let (csv_v2, onto_v2) = dataset(args.rows, 9, args.seed ^ 0x5eed);
    let ref_v2 = reference_sigma(&csv_v2, &onto_v2);
    let put = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_v2, "ontology": &onto_v2 })),
    );
    assert_eq!(put.body.get("version").and_then(Value::as_u64), Some(2));
    let body_v2 = json!({ "dataset": "clinical@2" });
    let first = request(worker_addrs[0], "POST", "/v1/discover", Some(&body_v2));
    assert_eq!(first.status, 200);
    assert_eq!(sigma_keys(&first.body), ref_v2);
    assert_eq!(
        first.body.get("resumed_from").and_then(Value::as_str),
        Some("none"),
        "the first run of fresh content is cold everywhere"
    );
    let fetched_before = worker_counter(worker_addrs[1], "serve.ship.fetched");
    let served_before = worker_counter(worker_addrs[0], "serve.ship.served");
    let second = request(worker_addrs[1], "POST", "/v1/discover", Some(&body_v2));
    assert_eq!(second.status, 200);
    assert_eq!(sigma_keys(&second.body), ref_v2, "shipped-snapshot Σ is byte-identical");
    assert_eq!(
        second.body.get("resumed_from").and_then(Value::as_str),
        Some("peer"),
        "host 1's cold root resumed from host 0's shipped checkpoint"
    );
    assert!(
        worker_counter(worker_addrs[1], "serve.ship.fetched") > fetched_before,
        "the requester counted the fetch"
    );
    assert!(
        worker_counter(worker_addrs[0], "serve.ship.served") > served_before,
        "the owner counted the transfer"
    );
    println!("phase peers: v2 checkpoint shipped across filesystems (resumed_from=peer)");

    // Stream sessions ship the same way: two edits against host 0, then
    // the third edit of the same session against host 1, which must
    // rebuild the session from its peer's persisted snapshot.
    let stream_ds = clinical(&PresetConfig {
        n_rows: args.rows.min(400),
        n_attrs: 5,
        n_ofds: 2,
        seed: args.seed,
        ..PresetConfig::default()
    });
    let schema = stream_ds.clean.schema();
    let specs: Vec<String> = stream_ds
        .ofds
        .iter()
        .map(|o| {
            let lhs: Vec<&str> = o.lhs.iter().map(|a| schema.name(a)).collect();
            format!("{}->{}", lhs.join(","), schema.name(o.rhs))
        })
        .collect();
    let stream_base = json!({
        "csv": csv::write_csv(&stream_ds.clean),
        "ontology": ofd_ontology::write_ontology(&stream_ds.full_ontology),
        "ofds": specs,
    });
    let edits = stream_script(&stream_ds, args.seed, 3);
    for edit in &edits[..2] {
        let (path, body) = stream_request(&stream_base, edit);
        let reply = request(worker_addrs[0], "POST", path, Some(&body));
        assert_eq!(reply.status, 200, "stream edit accepted on host 0");
    }
    let fetched_before = worker_counter(worker_addrs[1], "serve.ship.fetched");
    let (path, body) = stream_request(&stream_base, &edits[2]);
    let reply = request(worker_addrs[1], "POST", path, Some(&body));
    assert_eq!(reply.status, 200, "stream edit accepted on host 1");
    assert_eq!(
        reply.body.get("resumed_from_seq").and_then(Value::as_u64),
        Some(2),
        "host 1 rebuilt the session from host 0's shipped snapshot"
    );
    assert!(
        worker_counter(worker_addrs[1], "serve.ship.fetched") > fetched_before,
        "the stream adoption counted its fetch"
    );
    println!("phase peers: stream session shipped across filesystems (resumed_from_seq=2)");

    // SIGKILL the owner mid-discovery through the router. The survivor
    // cannot ship from a dead peer, so it must fall back to re-execution
    // from inputs — and still answer the original connection
    // byte-identically. The kill window is seeded; retry on a fresh
    // version until the failover actually lands mid-flight.
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_mul(9241));
    let mut version = 2u64;
    let mut dead: Option<usize> = None;
    for trial in 0..3u64 {
        let (csv_t, onto_t) = dataset(args.rows, 9, args.seed ^ (0x100 + trial));
        let ref_t = reference_sigma(&csv_t, &onto_t);
        let put = request(
            addr,
            "PUT",
            "/v1/datasets/clinical",
            Some(&json!({ "csv": &csv_t, "ontology": &onto_t })),
        );
        assert_eq!(put.status, 200, "trial PUT with the full fleet live");
        version = put.body.get("version").and_then(Value::as_u64).expect("trial version");
        let body = json!({ "dataset": format!("clinical@{version}") });
        let before: Vec<u64> = worker_addrs
            .iter()
            .map(|&a| worker_counter(a, "serve.admitted"))
            .collect();
        let retried_before = snap_count("serve.router.retried");
        let inflight = {
            let body = body.clone();
            std::thread::spawn(move || request(addr, "POST", "/v1/discover", Some(&body)))
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        let owner = loop {
            if let Some(slot) = (0..worker_addrs.len())
                .find(|&i| worker_counter(worker_addrs[i], "serve.admitted") > before[i])
            {
                break slot;
            }
            assert!(Instant::now() < deadline, "no worker admitted the in-flight request");
            std::thread::sleep(Duration::from_millis(10));
        };
        std::thread::sleep(Duration::from_millis(rng.random_range(300u64..1000)));
        fleet[owner].proc.kill_hard();

        let reply = inflight.join().expect("inflight client");
        assert_eq!(reply.status, 200, "failover answers the original connection");
        assert_eq!(sigma_keys(&reply.body), ref_t, "failover Σ is byte-identical");
        let resumed = reply.body.get("resumed_from").and_then(Value::as_str);
        if snap_count("serve.router.retried") > retried_before && resumed == Some("none") {
            println!(
                "phase peers: trial {trial} failed over; survivor re-executed from inputs \
                 (resumed_from=none)"
            );
            dead = Some(owner);
            break;
        }
        // The job finished before the kill landed — restart the owner on
        // its fixed address and try again with fresh content.
        println!("phase peers: trial {trial} finished before the kill; retrying");
        fleet[owner].restart();
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let ready = request(addr, "GET", "/readyz", None);
            if ready.body.get("live_workers").and_then(Value::as_u64) == Some(2) {
                break;
            }
            assert!(Instant::now() < deadline, "restarted worker never rejoined the ring");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    let dead = dead.expect("re-execution fallback never observed across 3 trials");

    // With the owner still dead, the prober must eject it: /readyz turns
    // degraded, and a catalog PUT is refused outright — one live replica
    // cannot make a two-replica quorum, and no torn version may appear.
    let deadline = Instant::now() + Duration::from_secs(10);
    let ready = loop {
        let ready = request(addr, "GET", "/readyz", None);
        if ready.body.get("state").and_then(Value::as_str) == Some("degraded") {
            break ready;
        }
        assert!(Instant::now() < deadline, "dead worker was never ejected from the ring");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(ready.status, 200, "a partial ring is degraded, not down");
    assert_eq!(ready.body.get("live_workers").and_then(Value::as_u64), Some(1));
    assert!(snap_count("serve.router.ring.ejected") >= 1, "the ejection was counted");
    let (csv_x, onto_x) = dataset(args.rows.min(600), 6, args.seed ^ 0xdead);
    let denied = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_x, "ontology": &onto_x })),
    );
    assert_eq!(denied.status, 503, "a sub-quorum PUT is refused");
    let survivor = worker_addrs[1 - dead];
    let described = request(survivor, "GET", "/v1/datasets/clinical", None);
    assert_eq!(
        described.body.get("version").and_then(Value::as_u64),
        Some(version),
        "the refused write left the newest version untouched"
    );
    let torn = request(survivor, "GET", &format!("/v1/datasets/clinical@{}", version + 1), None);
    assert_ne!(torn.status, 200, "no torn version is visible after the refused write");
    assert_eq!(
        snap_count("serve.catalog.replicated_partial"),
        0,
        "a two-replica quorum is all-or-nothing; partial replication is impossible"
    );
    println!("phase peers: ejection observed, sub-quorum PUT refused with no torn version");

    // Restart the dead host: the prober readmits it with hysteresis, and
    // quorum writes work again.
    fleet[dead].restart();
    let deadline = Instant::now() + Duration::from_secs(15);
    let ready = loop {
        let ready = request(addr, "GET", "/readyz", None);
        if ready.body.get("state").and_then(Value::as_str) == Some("ok") {
            break ready;
        }
        assert!(Instant::now() < deadline, "restarted worker was never readmitted");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(ready.body.get("live_workers").and_then(Value::as_u64), Some(2));
    assert!(snap_count("serve.router.ring.readmitted") >= 1, "the readmission was counted");
    let (csv_y, onto_y) = dataset(args.rows.min(600), 6, args.seed ^ 0xbeef);
    let put = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_y, "ontology": &onto_y })),
    );
    assert_eq!(put.status, 200, "quorum restored after readmission");
    assert_eq!(put.body.get("version").and_then(Value::as_u64), Some(version + 1));
    assert_eq!(put.body.get("replicas").and_then(Value::as_u64), Some(2));
    for &w in &worker_addrs {
        let described = request(w, "GET", "/v1/datasets/clinical", None);
        assert_eq!(described.body.get("version").and_then(Value::as_u64), Some(version + 1));
    }
    println!("phase peers: readmission observed, quorum writes restored (v{})", version + 1);

    // Peer-to-peer read repair: write one version to a single host
    // behind the router's back, then ask the *other* host for it by
    // explicit reference — it must fetch the gap from its peer.
    let (csv_r, onto_r) = dataset(args.rows.min(600), 6, args.seed ^ 0xfeed);
    let direct = request(
        worker_addrs[0],
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_r, "ontology": &onto_r })),
    );
    assert_eq!(direct.status, 200);
    let divergent = direct.body.get("version").and_then(Value::as_u64).expect("direct version");
    let fetch_before = worker_counter(worker_addrs[1], "serve.catalog.peer_fetch");
    let repaired = request(
        worker_addrs[1],
        "GET",
        &format!("/v1/datasets/clinical@{divergent}"),
        None,
    );
    assert_eq!(repaired.status, 200, "the missing version was repaired from a peer");
    assert_eq!(repaired.body.get("version").and_then(Value::as_u64), Some(divergent));
    assert!(
        worker_counter(worker_addrs[1], "serve.catalog.peer_fetch") > fetch_before,
        "the read repair counted its peer fetch"
    );
    println!("phase peers: catalog read repair fetched v{divergent} peer-to-peer");

    // The soak's ledger: every membership and replication event landed.
    assert!(snap_count("serve.router.ring.ejected") >= 1, "ejection was counted");
    assert!(snap_count("serve.router.ring.readmitted") >= 1, "readmission was counted");
    assert!(snap_count("serve.router.retried") >= 1, "failover retried at least once");

    if let Some(path) = metrics_out {
        let workers: Vec<Value> = worker_addrs
            .iter()
            .filter_map(|&a| try_request(a, "GET", "/metrics", None).ok().map(|r| r.body))
            .collect();
        let doc = json!({
            "router": request(addr, "GET", "/metrics", None).body,
            "workers": workers,
        });
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("metrics-out parent dir");
        }
        let text = serde_json::to_string_pretty(&doc).expect("serialize metrics") + "\n";
        std::fs::write(path, text).expect("write metrics-out");
        println!("phase peers: metrics written to {}", path.display());
    }

    router.shutdown();
    for worker in &mut fleet {
        worker.proc.terminate();
        assert_eq!(worker.proc.wait_exit(Duration::from_secs(30)), Some(0), "worker drains");
    }
    println!(
        "phase peers: ok (ejected={} readmitted={} retried={} routed={})",
        snap_count("serve.router.ring.ejected"),
        snap_count("serve.router.ring.readmitted"),
        snap_count("serve.router.retried"),
        snap_count("serve.router.routed"),
    );
}

// -------------------------------------------------------- chaos-net soak

/// The seeded toxic mix for the chaos-net soak. Severity cascades inside
/// the plan (refuse > blackhole > reset > partial > delay), so the per-
/// connection probabilities here are "armed" rates, not exact shares.
fn chaos_net_spec(seed: u64) -> String {
    format!(
        "seed={seed},net-delay%0.12,net-reset%0.08,net-partial%0.05,net-blackhole%0.03,\
         net-refuse%0.08,delay-ms=1"
    )
}

/// What one chaos-net pass leaves behind: per-proxy toxic schedules in
/// accept order, plus the router-side chaos ledger.
struct ChaosPass {
    schedules: Vec<Vec<String>>,
    injected: u64,
    resets: u64,
    blackholes: u64,
    retries_exhausted: u64,
    router_metrics: Value,
    worker_metrics: Vec<Value>,
}

/// One pass of the chaos-net workload: a two-host peer fleet behind a
/// static-fleet router, with (`chaos`) or without the toxic proxies on
/// the router→worker wire. The workload is strictly sequential and the
/// prober is parked after its initial round, so the proxies' accept
/// order — and therefore the toxic schedule — is a pure function of the
/// fault-plan seed.
fn chaos_net_pass(
    args: &Args,
    tag: &str,
    chaos: bool,
    csv_text: &str,
    onto_text: &str,
    reference: &[(String, String, u64, u64)],
) -> ChaosPass {
    let obs = Obs::enabled();
    let root = args.dir.join(tag);
    let mut fleet = spawn_peer_fleet(&root, 2, &[("peer-timeout-ms", "1500".to_owned())]);
    let worker_addrs: Vec<SocketAddr> = fleet.iter().map(PeerWorker::addr).collect();

    // The toxic wire: one in-process chaos proxy per worker, each with
    // its own fault plan from the same spec (occurrence counters are
    // per-proxy, so each schedule is deterministic in isolation). The
    // router's Obs receives the `serve.net.*` attribution.
    let mut proxies: Vec<NetFaultProxy> = Vec::new();
    let upstream: Vec<SocketAddr> = if chaos {
        for &w in &worker_addrs {
            let plan =
                Arc::new(FaultPlan::parse(&chaos_net_spec(args.seed)).expect("chaos-net spec"));
            proxies.push(NetFaultProxy::bind(w, plan, obs.clone()).expect("chaos proxy bind"));
        }
        proxies.iter().map(NetFaultProxy::addr).collect()
    } else {
        worker_addrs.clone()
    };

    let router_cfg = RouterConfig {
        // The prober runs one round at bind, then sleeps past the soak's
        // lifetime: interleaved probe connections would make the proxies'
        // accept order — and so the toxic schedule — nondeterministic.
        // A fresh static ring defaults to fully live, so parking the
        // prober costs nothing.
        probe_interval_ms: 600_000,
        eject_after: 100,
        connect_timeout_ms: 500,
        forward_timeout_ms: 2_500,
        retry_backoff_ms: 25,
        extra_rounds: 4,
        peer_timeout_ms: 1_500,
        head_timeout_ms: 5_000,
        obs: obs.clone(),
        ..RouterConfig::default()
    };
    let router = Router::bind(router_cfg, Fleet::Static(upstream)).expect("router bind");
    let addr = router.addr();
    println!("phase chaos: [{tag}] fleet up (chaos={chaos}), router on {addr}");

    if chaos {
        // Wait out the initial probe round so it lands at a fixed place
        // (entry 0) in every proxy's schedule before the workload starts.
        let deadline = Instant::now() + Duration::from_secs(10);
        while proxies.iter().any(|p| p.schedule().is_empty()) {
            assert!(
                Instant::now() < deadline,
                "the router's initial probe round never reached the proxies"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Quorum PUT over the toxic wire: the retry budget must absorb every
    // injected fault — the client sees one clean 200, both replicas
    // converge, and idempotent re-sends cover torn acks.
    let put = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": csv_text, "ontology": onto_text })),
    );
    assert_eq!(put.status, 200, "chaos PUT converges through retries");
    assert_eq!(put.body.get("version").and_then(Value::as_u64), Some(1));
    assert_eq!(put.body.get("replicas").and_then(Value::as_u64), Some(2), "both replicas acked");
    println!("phase chaos: [{tag}] quorum PUT v1 converged");

    // Scripted reads: every routed reply must be byte-identical to the
    // in-process reference, no matter which toxics fire on the way.
    for i in 0..12u64 {
        let reply =
            request(addr, "POST", "/v1/discover", Some(&json!({ "dataset": "clinical@1" })));
        assert_eq!(reply.status, 200, "chaos discover {i} answered");
        if sigma_keys(&reply.body) != reference {
            for (p, proxy) in proxies.iter().enumerate() {
                eprintln!("proxy {p} schedule so far: {:?}", proxy.schedule());
            }
            panic!("chaos discover {i} diverged from the reference: {}", reply.body);
        }
    }
    let described = request(addr, "GET", "/v1/datasets/clinical", None);
    assert_eq!(described.status, 200);
    assert_eq!(described.body.get("version").and_then(Value::as_u64), Some(1));
    println!("phase chaos: [{tag}] 12 discovers byte-identical");

    // Coordinator death mid-fan-out: a pinned v2 lands on host 0 only —
    // as if the router died after one replica PUT and before any commit.
    // The stranded *pending* version must never become readable: the next
    // read quorum-confirms it, finds it short of majority, and tears it
    // down (`serve.catalog.read_repaired`).
    let (csv_orphan, onto_orphan) = dataset(args.rows.min(400), 6, args.seed ^ 0xc0de);
    let orphan = request(
        worker_addrs[0],
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_orphan, "ontology": &onto_orphan, "version": 2 })),
    );
    assert_eq!(orphan.status, 200, "the pinned replica write is accepted as pending");
    println!("phase chaos: [{tag}] orphaned pending v2 planted on host 0");
    let repaired_before = worker_counter(worker_addrs[0], "serve.catalog.read_repaired");
    let described = request(worker_addrs[0], "GET", "/v1/datasets/clinical", None);
    assert_eq!(
        described.body.get("version").and_then(Value::as_u64),
        Some(1),
        "a sub-quorum pending version is never served as newest"
    );
    assert!(
        worker_counter(worker_addrs[0], "serve.catalog.read_repaired") > repaired_before,
        "read repair tore the orphaned pending version down"
    );
    println!("phase chaos: [{tag}] orphan torn down by read repair");
    let torn = request(worker_addrs[0], "GET", "/v1/datasets/clinical@2", None);
    assert_ne!(torn.status, 200, "the torn version is unreadable after repair");
    println!("phase chaos: [{tag}] torn version unreadable ({})", torn.status);
    let peer_view = request(worker_addrs[1], "GET", "/v1/datasets/clinical", None);
    println!("phase chaos: [{tag}] peer view agrees ({})", peer_view.status);
    assert_eq!(
        peer_view.body.get("version").and_then(Value::as_u64),
        Some(1),
        "the untouched replica agrees on the newest version"
    );

    // The ledger: every injected fault is attributed by name, and the
    // schedule log agrees with both the plan's own accounting and the
    // router-side counters.
    let schedules: Vec<Vec<String>> = proxies.iter().map(NetFaultProxy::schedule).collect();
    let label_count = |label: &str| {
        schedules.iter().flatten().filter(|s| s.as_str() == label).count() as u64
    };
    let toxic_count: u64 = schedules.iter().flatten().filter(|s| s.as_str() != "pass").count() as u64;
    let fired_total: u64 = proxies.iter().map(|p| p.plan().net_fired()).sum();
    let snap = obs.snapshot();
    let net = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(net("serve.net.injected"), fired_total, "injected == Σ plan.net_fired()");
    assert_eq!(net("serve.net.injected"), toxic_count, "injected == non-pass schedule entries");
    assert_eq!(net("serve.net.resets"), label_count("reset"), "every reset attributed");
    assert_eq!(net("serve.net.blackholes"), label_count("blackhole"), "every blackhole attributed");

    println!("phase chaos: [{tag}] ledger consistent, collecting metrics");
    let router_metrics = request(addr, "GET", "/metrics", None).body;
    let worker_metrics: Vec<Value> = worker_addrs
        .iter()
        .filter_map(|&a| try_request(a, "GET", "/metrics", None).ok().map(|r| r.body))
        .collect();

    router.shutdown();
    for proxy in &mut proxies {
        proxy.stop();
    }
    for worker in &mut fleet {
        worker.proc.terminate();
        assert_eq!(worker.proc.wait_exit(Duration::from_secs(30)), Some(0), "worker drains");
    }
    ChaosPass {
        schedules,
        injected: net("serve.net.injected"),
        resets: net("serve.net.resets"),
        blackholes: net("serve.net.blackholes"),
        retries_exhausted: net("serve.net.retries_exhausted"),
        router_metrics,
        worker_metrics,
    }
}

/// `--chaos-net`: deterministic network fault injection on the
/// router→worker wire. A fault-free pass proves the topology clean, two
/// chaos passes with the same seed must replay the identical toxic
/// schedule, every routed reply must be byte-identical to the reference,
/// a coordinator death mid-fan-out must leave no readable torn version,
/// and the `serve.net.*` counters must attribute every injected fault.
fn phase_chaos_net(args: &Args, metrics_out: Option<&Path>) {
    let (csv_text, onto_text) = dataset(args.rows.min(400), 6, args.seed);
    let reference = reference_sigma(&csv_text, &onto_text);
    println!("phase chaos: reference |Σ|={} ({} rows, seed {})", reference.len(),
        args.rows.min(400), args.seed);

    let clean = chaos_net_pass(args, "chaos-ref", false, &csv_text, &onto_text, &reference);
    assert_eq!(clean.injected, 0, "no faults fire without the toxic wire");
    println!("phase chaos: fault-free reference pass clean");

    let run1 = chaos_net_pass(args, "chaos-a", true, &csv_text, &onto_text, &reference);
    assert!(
        run1.injected >= 3,
        "the pinned seed must actually inject faults (got {})",
        run1.injected
    );
    assert!(
        run1.resets + run1.blackholes >= 1,
        "the soak must see at least one destructive toxic"
    );
    println!(
        "phase chaos: run A survived {} injected faults ({} resets, {} blackholes, \
         {} retry budgets exhausted)",
        run1.injected, run1.resets, run1.blackholes, run1.retries_exhausted
    );

    let run2 = chaos_net_pass(args, "chaos-b", true, &csv_text, &onto_text, &reference);
    assert_eq!(
        run1.schedules, run2.schedules,
        "the same seed must replay the identical toxic schedule"
    );
    assert_eq!(
        (run1.injected, run1.resets, run1.blackholes),
        (run2.injected, run2.resets, run2.blackholes),
        "the same seed must replay the identical chaos ledger"
    );
    println!("phase chaos: run B replayed run A's schedule exactly ({} connections/proxy)",
        run1.schedules.iter().map(Vec::len).max().unwrap_or(0));

    if let Some(path) = metrics_out {
        let doc = json!({
            "router": run1.router_metrics,
            "workers": run1.worker_metrics,
            "schedules": run1.schedules,
            "injected": run1.injected,
            "resets": run1.resets,
            "blackholes": run1.blackholes,
            "retries_exhausted": run1.retries_exhausted,
        });
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("metrics-out parent dir");
        }
        let text = serde_json::to_string_pretty(&doc).expect("serialize metrics") + "\n";
        std::fs::write(path, text).expect("write metrics-out");
        println!("phase chaos: metrics written to {}", path.display());
    }
    println!(
        "phase chaos: ok (injected={} resets={} blackholes={}, schedule replayed byte-for-byte)",
        run1.injected, run1.resets, run1.blackholes
    );
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("--server") {
        raw.next();
        let mut flags = Vec::new();
        while let Some(arg) = raw.next() {
            let name = arg.strip_prefix("--").expect("--flag VALUE").to_owned();
            let value = raw.next().unwrap_or_else(|| panic!("--{name} expects a value"));
            flags.push((name, value));
        }
        return server_mode(&flags);
    }

    let mut args = Args {
        seed: 42,
        rows: 2500,
        dir: std::env::temp_dir().join(format!("ofd_serve_probe_{}", std::process::id())),
    };
    let mut router_mode = false;
    let mut stream_mode = false;
    let mut peers_mode = false;
    let mut chaos_net_mode = false;
    let mut metrics_out: Option<PathBuf> = None;
    while let Some(arg) = raw.next() {
        let mut value = |name: &str| raw.next().unwrap_or_else(|| panic!("{name} VALUE"));
        match arg.as_str() {
            "--seed" => args.seed = value("--seed").parse().expect("--seed expects an integer"),
            "--rows" => args.rows = value("--rows").parse().expect("--rows expects an integer"),
            "--dir" => args.dir = value("--dir").into(),
            "--router" => router_mode = true,
            "--stream" => stream_mode = true,
            "--peers" => peers_mode = true,
            "--chaos-net" => chaos_net_mode = true,
            "--metrics-out" => metrics_out = Some(value("--metrics-out").into()),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        metrics_out.is_none() || router_mode || stream_mode || peers_mode || chaos_net_mode,
        "--metrics-out only applies to --router, --stream, --peers and --chaos-net runs"
    );
    assert!(
        u32::from(router_mode)
            + u32::from(stream_mode)
            + u32::from(peers_mode)
            + u32::from(chaos_net_mode)
            <= 1,
        "--router, --stream, --peers and --chaos-net are separate soaks"
    );
    let _ = std::fs::remove_dir_all(&args.dir);

    if stream_mode {
        phase_stream(&args, metrics_out.as_deref());
        let _ = std::fs::remove_dir_all(&args.dir);
        println!("serve_probe: streaming session consistent");
        return ExitCode::SUCCESS;
    }

    if router_mode {
        phase_router(&args, metrics_out.as_deref());
        let _ = std::fs::remove_dir_all(&args.dir);
        println!("serve_probe: router fleet consistent");
        return ExitCode::SUCCESS;
    }

    if peers_mode {
        phase_peer_fleet(&args, metrics_out.as_deref());
        let _ = std::fs::remove_dir_all(&args.dir);
        println!("serve_probe: peer fleet consistent");
        return ExitCode::SUCCESS;
    }

    if chaos_net_mode {
        phase_chaos_net(&args, metrics_out.as_deref());
        let _ = std::fs::remove_dir_all(&args.dir);
        println!("serve_probe: chaos-net fleet consistent");
        return ExitCode::SUCCESS;
    }

    // Medium payload for the shed burst; a wide lattice (more attributes)
    // for the kill/drain phases — rows barely move discovery wall time,
    // attribute count does, and the kill window must land mid-discovery
    // with completed-level snapshots already on disk.
    let (burst_csv, burst_onto) = dataset(args.rows.min(800), 6, args.seed);
    let burst_ref = reference_sigma(&burst_csv, &burst_onto);
    let (long_csv, long_onto) = dataset(args.rows, 9, args.seed);
    let t0 = Instant::now();
    let long_ref = reference_sigma(&long_csv, &long_onto);
    let long_wall = t0.elapsed();
    let long_body = json!({ "csv": &long_csv, "ontology": &long_onto });
    println!(
        "reference: burst |Σ|={}, long |Σ|={} in {:?} ({} rows, seed {})",
        burst_ref.len(),
        long_ref.len(),
        long_wall,
        args.rows,
        args.seed
    );

    phase_shed(&args, &burst_csv, &burst_onto, &burst_ref);
    phase_sigkill(&args, &long_body, &long_ref);
    phase_drain(&args, &long_body, &long_ref);
    phase_snapshot_faults(&args, &long_body, &long_ref);

    let _ = std::fs::remove_dir_all(&args.dir);
    println!("serve_probe: all phases consistent");
    ExitCode::SUCCESS
}
