//! Stage-by-stage timing probe for paper-scale feasibility measurements.
//! `scale_probe [N] [--timeout-ms MS] [--max-work W]` prints per-stage wall
//! times, flushing as it goes; with limits set, interrupted stages report
//! sound partial results and the probe marks the run INCOMPLETE.
//! `--metrics-out PATH` / `--trace` enable `ofd-obs`: engine counters plus a
//! `probe.<stage>` span per stage, written as JSON / a span tree on stderr.

use std::io::Write;
use std::time::Instant;

use ofd_clean::{ofd_clean, OfdCleanConfig};
use ofd_core::{ExecGuard, GuardConfig, Obs};
use ofd_datagen::{clinical, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};

fn stage<T>(obs: &Obs, name: &str, f: impl FnOnce() -> T) -> T {
    let _span = obs.span(&format!("probe.{name}"));
    let start = Instant::now();
    let out = f();
    println!("{name}: {:.2?}", start.elapsed());
    std::io::stdout().flush().ok();
    out
}

/// Parsed probe arguments: tuple count, guard, obs handle, and where to
/// emit the metrics snapshot.
struct ProbeArgs {
    n: usize,
    guard: ExecGuard,
    obs: Obs,
    metrics_out: Option<String>,
    trace: bool,
}

/// Parses `[N] [--timeout-ms MS] [--max-work W] [--max-rss-mib M]
/// [--metrics-out PATH] [--trace]`.
fn parse_args(default_n: usize) -> ProbeArgs {
    let mut n = default_n;
    let mut cfg = GuardConfig::default();
    let mut metrics_out = None;
    let mut trace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeout-ms" => {
                let ms: u64 = args.next().and_then(|v| v.parse().ok()).expect("--timeout-ms MS");
                cfg.timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--max-work" => {
                cfg.max_work = args.next().and_then(|v| v.parse().ok());
            }
            "--max-rss-mib" => {
                cfg.max_rss_mib = args.next().and_then(|v| v.parse().ok());
            }
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out PATH"));
            }
            "--trace" => trace = true,
            other => {
                if let Ok(v) = other.parse() {
                    n = v;
                }
            }
        }
    }
    let obs = if metrics_out.is_some() || trace { Obs::enabled() } else { Obs::disabled() };
    ProbeArgs { n, guard: ExecGuard::new(cfg), obs, metrics_out, trace }
}

/// Writes the metrics JSON / renders the span tree, per the flags.
fn emit_obs(args: &ProbeArgs) {
    if !args.obs.is_enabled() {
        return;
    }
    let snapshot = args.obs.snapshot();
    if let Some(path) = &args.metrics_out {
        let bytes = snapshot.to_json_string(true);
        match ofd_core::atomic_write(std::path::Path::new(path), bytes.as_bytes()) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.trace {
        eprint!("{}", snapshot.render_trace());
    }
}

fn main() {
    let probe = parse_args(50_000);
    let (guard, obs) = (&probe.guard, &probe.obs);
    let mut ds = stage(obs, "generate", || {
        clinical(&PresetConfig {
            n_rows: probe.n,
            ..PresetConfig::default()
        })
    });
    let disc = stage(obs, "discover(level<=3)", || {
        FastOfd::new(&ds.clean, &ds.full_ontology)
            .options(DiscoveryOptions::new().max_level(3).guard(guard.clone()).obs(obs.clone()))
            .run()
    });
    println!("  -> {} OFDs", disc.len());
    stage(obs, "corrupt", || {
        ds.degrade_ontology(0.04, 7);
        ds.inject_errors(0.03, 7);
    });
    let config = OfdCleanConfig {
        guard: guard.clone(),
        obs: obs.clone(),
        ..OfdCleanConfig::default()
    };
    let result = stage(obs, "ofd_clean", || {
        ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config)
    });
    println!(
        "  -> satisfied={} adds={} repairs={}",
        result.satisfied,
        result.ontology_dist(),
        result.data_dist()
    );
    if let Some(i) = guard.interrupt() {
        println!("INCOMPLETE: interrupted ({i}); results above are sound but partial");
    }
    emit_obs(&probe);
}
