//! Stage-by-stage timing probe for paper-scale feasibility measurements.
//! `scale_probe [N] [--timeout-ms MS] [--max-work W]` prints per-stage wall
//! times, flushing as it goes; with limits set, interrupted stages report
//! sound partial results and the probe marks the run INCOMPLETE.

use std::io::Write;
use std::time::Instant;

use ofd_clean::{ofd_clean, OfdCleanConfig};
use ofd_core::{ExecGuard, GuardConfig};
use ofd_datagen::{clinical, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};

fn stage<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("{name}: {:.2?}", start.elapsed());
    std::io::stdout().flush().ok();
    out
}

/// Parses `[N] [--timeout-ms MS] [--max-work W] [--max-rss-mib M]`.
fn parse_args(default_n: usize) -> (usize, ExecGuard) {
    let mut n = default_n;
    let mut cfg = GuardConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeout-ms" => {
                let ms: u64 = args.next().and_then(|v| v.parse().ok()).expect("--timeout-ms MS");
                cfg.timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--max-work" => {
                cfg.max_work = args.next().and_then(|v| v.parse().ok());
            }
            "--max-rss-mib" => {
                cfg.max_rss_mib = args.next().and_then(|v| v.parse().ok());
            }
            other => {
                if let Ok(v) = other.parse() {
                    n = v;
                }
            }
        }
    }
    (n, ExecGuard::new(cfg))
}

fn main() {
    let (n, guard) = parse_args(50_000);
    let mut ds = stage("generate", || {
        clinical(&PresetConfig {
            n_rows: n,
            ..PresetConfig::default()
        })
    });
    let disc = stage("discover(level<=3)", || {
        FastOfd::new(&ds.clean, &ds.full_ontology)
            .options(DiscoveryOptions::new().max_level(3).guard(guard.clone()))
            .run()
    });
    println!("  -> {} OFDs", disc.len());
    stage("corrupt", || {
        ds.degrade_ontology(0.04, 7);
        ds.inject_errors(0.03, 7);
    });
    let config = OfdCleanConfig {
        guard: guard.clone(),
        ..OfdCleanConfig::default()
    };
    let result = stage("ofd_clean", || {
        ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config)
    });
    println!(
        "  -> satisfied={} adds={} repairs={}",
        result.satisfied,
        result.ontology_dist(),
        result.data_dist()
    );
    if let Some(i) = guard.interrupt() {
        println!("INCOMPLETE: interrupted ({i}); results above are sound but partial");
    }
}
