//! Stage-by-stage timing probe for paper-scale feasibility measurements.
//! `scale_probe [N]` prints per-stage wall times, flushing as it goes.

use std::io::Write;
use std::time::Instant;

use ofd_clean::{ofd_clean, OfdCleanConfig};
use ofd_datagen::{clinical, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};

fn stage<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("{name}: {:.2?}", start.elapsed());
    std::io::stdout().flush().ok();
    out
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let mut ds = stage("generate", || {
        clinical(&PresetConfig {
            n_rows: n,
            ..PresetConfig::default()
        })
    });
    let disc = stage("discover(level<=3)", || {
        FastOfd::new(&ds.clean, &ds.full_ontology)
            .options(DiscoveryOptions::new().max_level(3))
            .run()
    });
    println!("  -> {} OFDs", disc.len());
    stage("corrupt", || {
        ds.degrade_ontology(0.04, 7);
        ds.inject_errors(0.03, 7);
    });
    let result = stage("ofd_clean", || {
        ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default())
    });
    println!(
        "  -> satisfied={} adds={} repairs={}",
        result.satisfied,
        result.ontology_dist(),
        result.data_dist()
    );
}
