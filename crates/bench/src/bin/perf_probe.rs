//! Multi-preset discovery perf baseline (`BENCH_discovery.json`, schema v2)
//! and the CI `perf-smoke` regression gate.
//!
//! ```text
//! perf_probe [--out PATH] [--only NAME] [--repeats K]      # write/refresh
//! perf_probe --check PATH [--only NAME] [--max-regress-pct P]
//! ```
//!
//! The baseline holds one entry per named workload from
//! [`ofd_datagen::named`] — `clinical-40k` (the long-standing
//! single-threaded gate), `clinical-250k` (the sharded hybrid-pipeline
//! smoke scale), `kiva-670k` and `synth-1m`. Each entry pins every
//! result-affecting knob plus the perf knobs (`threads`, `sample_rounds`,
//! `shards`) so the recorded wall time is comparable across commits, and
//! records `host.cores` so cross-host numbers are never mistaken for
//! same-host history.
//!
//! Entries that measure a sequential reference (`sequential_wall_ms`) also
//! record `speedup` — the plain sequential engine (threads=1, sampling and
//! sharding off) against the entry's hybrid configuration, i.e. the
//! *algorithmic* gain of the sampling/sharding pipeline, which is honest
//! on a single-core host where thread-level gains cannot show.
//!
//! `--check` re-runs every recorded entry (optionally filtered with
//! `--only`) under its recorded knobs and fails when |Σ| drifts — a perf
//! gate must not pass on wrong answers — or when the wall time exceeds the
//! entry's absolute `budget_ms` (when present) or regresses more than
//! `--max-regress-pct` (default 25%) otherwise. An entry whose preset name
//! is unknown to this binary is SKIPPED with a note, not failed: baselines
//! may be newer than the checkout.

use std::path::Path;
use std::time::Instant;

use ofd_datagen::{named, Dataset, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};
use serde_json::{json, Value};

struct EntryConfig {
    name: &'static str,
    preset: &'static str,
    max_level: usize,
    threads: usize,
    sample_rounds: usize,
    shards: usize,
    repeats: usize,
    /// Also measure the plain sequential engine and record the speedup.
    measure_sequential: bool,
    /// Absolute wall budget for `--check` (ms); `None` gates on
    /// `--max-regress-pct` against the recorded wall instead.
    budget_ms: Option<u64>,
}

/// The recorded workload matrix. `clinical-40k` keeps the historical gate
/// shape (single-threaded, default engine); the large entries exercise the
/// hybrid sampling + sharding pipeline.
fn plan() -> Vec<EntryConfig> {
    vec![
        EntryConfig {
            name: "clinical-40k",
            preset: "clinical-40k",
            max_level: 4,
            threads: 1,
            sample_rounds: ofd_discovery::DEFAULT_SAMPLE_ROUNDS,
            shards: 0,
            repeats: 3,
            measure_sequential: true,
            budget_ms: None,
        },
        EntryConfig {
            name: "clinical-250k",
            preset: "clinical-250k",
            max_level: 4,
            threads: 4,
            sample_rounds: ofd_discovery::DEFAULT_SAMPLE_ROUNDS,
            // Sampling alone already prunes ~99.9% of candidates here; the
            // shard oracle's mini-lattices are worth their cost only when
            // spare cores absorb them (see EXPERIMENTS.md), so the CI-gated
            // entry keeps the phase off.
            shards: 0,
            repeats: 2,
            measure_sequential: true,
            budget_ms: None, // derived from the measurement below
        },
        EntryConfig {
            name: "kiva-670k",
            preset: "kiva-670k",
            max_level: 4,
            threads: 4,
            sample_rounds: ofd_discovery::DEFAULT_SAMPLE_ROUNDS,
            shards: 0,
            repeats: 1,
            measure_sequential: false,
            budget_ms: None,
        },
        EntryConfig {
            name: "synth-1m",
            preset: "synth-1m",
            max_level: 4,
            threads: 4,
            sample_rounds: ofd_discovery::DEFAULT_SAMPLE_ROUNDS,
            shards: 8,
            repeats: 1,
            measure_sequential: false,
            budget_ms: None,
        },
    ]
}

struct Measured {
    wall_ms: u64,
    ofds: usize,
    peak_partition_bytes: u64,
    cache_hit_rate: f64,
}

struct Knobs {
    max_level: usize,
    threads: usize,
    sample_rounds: usize,
    shards: usize,
    repeats: usize,
}

/// Runs the workload `repeats` times and keeps the fastest wall time (the
/// standard noise-rejection choice for regression gates).
fn measure(ds: &Dataset, k: &Knobs) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..k.repeats.max(1) {
        let start = Instant::now();
        let result = FastOfd::new(&ds.clean, &ds.full_ontology)
            .options(
                DiscoveryOptions::new()
                    .max_level(k.max_level)
                    .threads(k.threads)
                    .sample_rounds(k.sample_rounds)
                    .shards(k.shards),
            )
            .run();
        let wall_ms = start.elapsed().as_millis() as u64;
        assert!(result.complete, "pinned workload must run to completion");
        let cs = result.stats.cache.expect("cache on by default");
        let lookups = cs.hits + cs.misses;
        let m = Measured {
            wall_ms,
            ofds: result.len(),
            peak_partition_bytes: cs.peak_resident_bytes,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cs.hits as f64 / lookups as f64
            },
        };
        if best.as_ref().is_none_or(|b| m.wall_ms < b.wall_ms) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn generate(preset: &str) -> Option<(Dataset, PresetConfig)> {
    let (build, cfg) = named(preset)?;
    Some((build(&cfg), cfg))
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Records one baseline entry: hybrid measurement, optional sequential
/// reference, and a |Σ| cross-check between the two (the result-neutrality
/// contract, enforced live at bench scale, not just on unit-test fixtures).
fn record_entry(e: &EntryConfig) -> Value {
    let (ds, cfg) =
        generate(e.preset).unwrap_or_else(|| panic!("unknown preset {:?}", e.preset));
    let knobs = Knobs {
        max_level: e.max_level,
        threads: e.threads,
        sample_rounds: e.sample_rounds,
        shards: e.shards,
        repeats: e.repeats,
    };
    let m = measure(&ds, &knobs);
    let mut sequential_wall_ms: Option<u64> = None;
    let mut speedup: Option<f64> = None;
    if e.measure_sequential {
        let seq = measure(
            &ds,
            &Knobs {
                threads: 1,
                sample_rounds: 0,
                shards: 0,
                ..knobs
            },
        );
        assert_eq!(
            seq.ofds, m.ofds,
            "{}: hybrid and sequential engines must find the same |Σ|",
            e.name
        );
        sequential_wall_ms = Some(seq.wall_ms);
        speedup = Some(seq.wall_ms as f64 / m.wall_ms.max(1) as f64);
    }
    // Large entries get an absolute wall budget: 3x the recorded best,
    // floored generously so CI noise on shared runners cannot flake the
    // gate. The 40k entry keeps the tighter relative gate instead.
    let budget_ms = e
        .budget_ms
        .or_else(|| (e.name != "clinical-40k").then(|| (m.wall_ms * 3).max(10_000)));
    println!(
        "{}: wall {} ms, |Σ| {}, seq {:?} ms, speedup {:?}",
        e.name, m.wall_ms, m.ofds, sequential_wall_ms, speedup
    );
    json!({
        "name": e.name,
        "preset": e.preset,
        "rows": cfg.n_rows,
        "seed": cfg.seed,
        "max_level": e.max_level,
        "threads": e.threads,
        "sample_rounds": e.sample_rounds,
        "shards": e.shards,
        "partition_cache_mib": ofd_discovery::DEFAULT_PARTITION_CACHE_MIB,
        "repeats": e.repeats,
        "wall_ms": m.wall_ms,
        "ofds": m.ofds,
        "peak_partition_bytes": m.peak_partition_bytes,
        "cache_hit_rate": m.cache_hit_rate,
        "sequential_wall_ms": sequential_wall_ms,
        "speedup": speedup,
        "budget_ms": budget_ms,
    })
}

/// Re-runs one recorded entry and gates it. Returns `Err(reason)` on a
/// failed gate, `Ok(true)` when compared, `Ok(false)` when skipped.
fn check_entry(
    entry: &Value,
    repeats_override: Option<usize>,
    max_regress_pct: f64,
) -> Result<bool, String> {
    let name = entry
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>");
    let preset = entry
        .get("preset")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{name}: entry has no preset field"))?;
    let Some((ds, _)) = generate(preset) else {
        println!(
            "perf-smoke: {name}: SKIPPED — preset {preset:?} unknown to this binary \
             (baseline newer than checkout?); no comparison was performed"
        );
        return Ok(false);
    };
    let field = |k: &str| {
        entry
            .get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{name}: entry field {k:?} missing"))
    };
    let knobs = Knobs {
        max_level: field("max_level")? as usize,
        threads: field("threads")? as usize,
        sample_rounds: field("sample_rounds")? as usize,
        shards: field("shards")? as usize,
        repeats: repeats_override.unwrap_or(field("repeats")? as usize),
    };
    let base_ms = field("wall_ms")?;
    let base_ofds = field("ofds")?;
    let budget_ms = entry.get("budget_ms").and_then(Value::as_u64);
    let m = measure(&ds, &knobs);
    let (limit_ms, gate) = match budget_ms {
        Some(b) => (b as f64, "budget"),
        None => (
            (base_ms as f64) * (1.0 + max_regress_pct / 100.0),
            "regress",
        ),
    };
    println!(
        "perf-smoke: {name}: wall {} ms vs baseline {} ms (threads {}, {} limit {:.0} ms), \
         |Σ| {} vs {}",
        m.wall_ms, base_ms, knobs.threads, gate, limit_ms, m.ofds, base_ofds
    );
    if m.ofds as u64 != base_ofds {
        return Err(format!(
            "{name}: |Σ| drifted from the baseline — fix correctness before perf"
        ));
    }
    if (m.wall_ms as f64) > limit_ms {
        return Err(format!("{name}: wall time exceeds the {gate} limit"));
    }
    Ok(true)
}

fn main() {
    let mut out = "BENCH_discovery.json".to_owned();
    let mut only: Option<String> = None;
    let mut check: Option<String> = None;
    let mut repeats_override: Option<usize> = None;
    let mut max_regress_pct = 25.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| panic!("{what} expects a value"));
        match arg.as_str() {
            "--out" => out = next("--out"),
            "--only" => only = Some(next("--only")),
            "--check" => check = Some(next("--check")),
            "--repeats" => {
                repeats_override = Some(next("--repeats").parse().expect("--repeats K"));
            }
            "--max-regress-pct" => {
                max_regress_pct = next("--max-regress-pct").parse().expect("--max-regress-pct P");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let matches = |name: &str| only.as_deref().is_none_or(|o| o == name);

    if let Some(path) = check {
        // A missing baseline is an explicit SKIP, not a silent pass: the
        // caller sees exactly why no comparison ran and exit 0 keeps CI
        // green on fresh checkouts. A present-but-unreadable or malformed
        // baseline still fails loudly — that is corruption, not absence.
        if !Path::new(&path).exists() {
            println!(
                "perf-smoke: SKIPPED — no baseline at {path}; run `perf_probe --out {path}` \
                 on a quiet machine to record one (no comparison was performed)"
            );
            return;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text).expect("baseline parses as JSON");
        let Some(entries) = baseline.get("entries").and_then(Value::as_array) else {
            eprintln!(
                "FAIL: {path} is not a v2 multi-entry baseline; re-record it with \
                 `perf_probe --out {path}`"
            );
            std::process::exit(1);
        };
        let mut compared = 0usize;
        let mut failures: Vec<String> = Vec::new();
        for entry in entries {
            let name = entry.get("name").and_then(Value::as_str).unwrap_or("");
            if !matches(name) {
                continue;
            }
            match check_entry(entry, repeats_override, max_regress_pct) {
                Ok(true) => compared += 1,
                Ok(false) => {}
                Err(reason) => failures.push(reason),
            }
        }
        if compared == 0 && failures.is_empty() {
            eprintln!("FAIL: no baseline entry was compared (bad --only filter?)");
            std::process::exit(1);
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("OK ({compared} entries)");
        return;
    }

    let mut entries: Vec<Value> = Vec::new();
    for mut e in plan() {
        if !matches(e.name) {
            continue;
        }
        if let Some(r) = repeats_override {
            e.repeats = r;
        }
        entries.push(record_entry(&e));
    }
    assert!(!entries.is_empty(), "no plan entry matches --only filter");
    let report = json!({
        "bench": "discovery",
        "version": 2,
        "host": { "cores": host_cores() },
        "entries": Value::Array(entries),
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = Path::new(&out);
    ofd_core::atomic_write(path, json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
