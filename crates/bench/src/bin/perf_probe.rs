//! Pinned discovery workload for the perf baseline (`BENCH_discovery.json`)
//! and the CI `perf-smoke` regression gate.
//!
//! ```text
//! perf_probe [--rows N] [--seed S] [--max-level L] [--repeats K]
//!            [--out PATH]                  # write/refresh the baseline
//! perf_probe --check PATH [--max-regress-pct P]   # CI gate (default 25%)
//! ```
//!
//! The workload is deliberately fixed (clinical preset, single-threaded,
//! partition cache on at the default budget) so the recorded wall time is
//! comparable across commits. `--check` re-runs the same workload the
//! baseline records and exits non-zero when the best-of-`repeats` wall time
//! regresses by more than the threshold, or when the result shape (|Σ|)
//! drifts — a perf gate must not pass on wrong answers.

use std::path::Path;
use std::time::Instant;

use ofd_datagen::{clinical, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};
use serde_json::Value;

struct Workload {
    rows: usize,
    seed: u64,
    max_level: usize,
    repeats: usize,
}

struct Measured {
    wall_ms: u64,
    ofds: usize,
    peak_partition_bytes: u64,
    cache_hit_rate: f64,
}

/// Runs the pinned workload `repeats` times and keeps the fastest wall time
/// (the standard noise-rejection choice for regression gates).
fn measure(w: &Workload) -> Measured {
    let ds = clinical(&PresetConfig {
        n_rows: w.rows,
        seed: w.seed,
        ..PresetConfig::default()
    });
    let mut best: Option<Measured> = None;
    for _ in 0..w.repeats {
        let start = Instant::now();
        let result = FastOfd::new(&ds.clean, &ds.full_ontology)
            .options(DiscoveryOptions::new().max_level(w.max_level))
            .run();
        let wall_ms = start.elapsed().as_millis() as u64;
        assert!(result.complete, "pinned workload must run to completion");
        let cs = result.stats.cache.expect("cache on by default");
        let lookups = cs.hits + cs.misses;
        let m = Measured {
            wall_ms,
            ofds: result.len(),
            peak_partition_bytes: cs.peak_resident_bytes,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cs.hits as f64 / lookups as f64
            },
        };
        if best.as_ref().is_none_or(|b| m.wall_ms < b.wall_ms) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn report(w: &Workload, m: &Measured) -> Value {
    Value::Object(vec![
        ("bench".to_owned(), Value::from("discovery")),
        (
            "workload".to_owned(),
            Value::Object(vec![
                ("preset".to_owned(), Value::from("clinical")),
                ("rows".to_owned(), Value::from(w.rows)),
                ("seed".to_owned(), Value::from(w.seed)),
                ("max_level".to_owned(), Value::from(w.max_level)),
                ("threads".to_owned(), Value::from(1u64)),
                (
                    "partition_cache_mib".to_owned(),
                    Value::from(ofd_discovery::DEFAULT_PARTITION_CACHE_MIB),
                ),
                ("repeats".to_owned(), Value::from(w.repeats)),
            ]),
        ),
        ("wall_ms".to_owned(), Value::from(m.wall_ms)),
        ("ofds".to_owned(), Value::from(m.ofds)),
        (
            "peak_partition_bytes".to_owned(),
            Value::from(m.peak_partition_bytes),
        ),
        ("cache_hit_rate".to_owned(), Value::from(m.cache_hit_rate)),
    ])
}

/// Reconstructs the pinned workload recorded in a baseline report so
/// `--check` measures apples-to-apples even if the defaults move later.
fn workload_of(baseline: &Value, repeats: usize) -> Workload {
    let w = baseline.get("workload").expect("baseline has workload");
    let field = |k: &str| w.get(k).and_then(Value::as_u64).expect("workload field");
    Workload {
        rows: field("rows") as usize,
        seed: field("seed"),
        max_level: field("max_level") as usize,
        repeats,
    }
}

fn main() {
    let mut w = Workload {
        rows: 40_000,
        seed: 42,
        max_level: 4,
        repeats: 3,
    };
    let mut out = "BENCH_discovery.json".to_owned();
    let mut check: Option<String> = None;
    let mut max_regress_pct = 25.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| panic!("{what} expects a value"));
        match arg.as_str() {
            "--rows" => w.rows = next("--rows").parse().expect("--rows N"),
            "--seed" => w.seed = next("--seed").parse().expect("--seed S"),
            "--max-level" => w.max_level = next("--max-level").parse().expect("--max-level L"),
            "--repeats" => w.repeats = next("--repeats").parse().expect("--repeats K"),
            "--out" => out = next("--out"),
            "--check" => check = Some(next("--check")),
            "--max-regress-pct" => {
                max_regress_pct = next("--max-regress-pct").parse().expect("--max-regress-pct P");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    if let Some(path) = check {
        // A missing baseline is an explicit SKIP, not a silent pass: the
        // caller sees exactly why no comparison ran and exit 0 keeps CI
        // green on fresh checkouts. A present-but-unreadable or malformed
        // baseline still fails loudly — that is corruption, not absence.
        if !Path::new(&path).exists() {
            println!(
                "perf-smoke: SKIPPED — no baseline at {path}; run `perf_probe --out {path}` \
                 on a quiet machine to record one (no comparison was performed)"
            );
            return;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text).expect("baseline parses as JSON");
        let pinned = workload_of(&baseline, w.repeats);
        let m = measure(&pinned);
        let base_ms = baseline.get("wall_ms").and_then(Value::as_u64).expect("wall_ms");
        let base_ofds = baseline.get("ofds").and_then(Value::as_u64).expect("ofds");
        let limit_ms = (base_ms as f64) * (1.0 + max_regress_pct / 100.0);
        println!(
            "perf-smoke: wall {} ms vs baseline {} ms (limit {:.0} ms, +{max_regress_pct}%), \
             |Σ| {} vs {}",
            m.wall_ms, base_ms, limit_ms, m.ofds, base_ofds
        );
        if m.ofds as u64 != base_ofds {
            eprintln!("FAIL: |Σ| drifted from the baseline — fix correctness before perf");
            std::process::exit(1);
        }
        if (m.wall_ms as f64) > limit_ms {
            eprintln!("FAIL: wall-time regression exceeds {max_regress_pct}%");
            std::process::exit(1);
        }
        println!("OK");
        return;
    }

    let m = measure(&w);
    let json = serde_json::to_string_pretty(&report(&w, &m)).expect("report serializes");
    let path = Path::new(&out);
    ofd_core::atomic_write(path, json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "wrote {out}: wall {} ms, |Σ| {}, peak partition bytes {}, hit rate {:.3}",
        m.wall_ms, m.ofds, m.peak_partition_bytes, m.cache_hit_rate
    );
}
