//! Phase-level timing probe for OFDClean at scale.
//! `clean_probe [N] [--timeout-ms MS] [--max-work W]`; with limits set the
//! guarded phases stop at their next checkpoint and the probe marks the run
//! INCOMPLETE. `--metrics-out PATH` / `--trace` enable `ofd-obs`: a
//! `probe.<stage>` span plus headline counters per phase, written as JSON /
//! a span tree on stderr.

use std::collections::HashSet;
use std::io::Write;
use std::time::Instant;

use ofd_clean::{
    assign_all, beam_search_guarded, build_classes, local_refinement_guarded, repair_data_guarded,
    SenseView,
};
use ofd_core::{ExecGuard, GuardConfig, Obs, SenseIndex};
use ofd_datagen::{clinical, PresetConfig};

fn stage<T>(obs: &Obs, name: &str, f: impl FnOnce() -> T) -> T {
    let _span = obs.span(&format!("probe.{name}"));
    let start = Instant::now();
    let out = f();
    println!("{name}: {:.2?}", start.elapsed());
    std::io::stdout().flush().ok();
    out
}

/// Parsed probe arguments: tuple count, guard, obs handle, and where to
/// emit the metrics snapshot.
struct ProbeArgs {
    n: usize,
    guard: ExecGuard,
    obs: Obs,
    metrics_out: Option<String>,
    trace: bool,
}

/// Parses `[N] [--timeout-ms MS] [--max-work W] [--max-rss-mib M]
/// [--metrics-out PATH] [--trace]`.
fn parse_args(default_n: usize) -> ProbeArgs {
    let mut n = default_n;
    let mut cfg = GuardConfig::default();
    let mut metrics_out = None;
    let mut trace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeout-ms" => {
                let ms: u64 = args.next().and_then(|v| v.parse().ok()).expect("--timeout-ms MS");
                cfg.timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--max-work" => {
                cfg.max_work = args.next().and_then(|v| v.parse().ok());
            }
            "--max-rss-mib" => {
                cfg.max_rss_mib = args.next().and_then(|v| v.parse().ok());
            }
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out PATH"));
            }
            "--trace" => trace = true,
            other => {
                if let Ok(v) = other.parse() {
                    n = v;
                }
            }
        }
    }
    let obs = if metrics_out.is_some() || trace { Obs::enabled() } else { Obs::disabled() };
    ProbeArgs { n, guard: ExecGuard::new(cfg), obs, metrics_out, trace }
}

/// Writes the metrics JSON / renders the span tree, per the flags.
fn emit_obs(args: &ProbeArgs) {
    if !args.obs.is_enabled() {
        return;
    }
    let snapshot = args.obs.snapshot();
    if let Some(path) = &args.metrics_out {
        let bytes = snapshot.to_json_string(true);
        match ofd_core::atomic_write(std::path::Path::new(path), bytes.as_bytes()) {
            Ok(()) => eprintln!("wrote metrics to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.trace {
        eprint!("{}", snapshot.render_trace());
    }
}

fn main() {
    let probe = parse_args(20_000);
    let (guard, obs) = (&probe.guard, &probe.obs);
    let mut ds = clinical(&PresetConfig {
        n_rows: probe.n,
        ..PresetConfig::default()
    });
    ds.degrade_ontology(0.04, 7);
    ds.inject_errors(0.03, 7);
    let working = ds.relation.clone();
    let mut index = stage(obs, "index", || SenseIndex::synonym(&working, &ds.ontology));
    let classes = stage(obs, "build_classes", || build_classes(&working, &ds.ofds));
    let n_classes: usize = classes.iter().map(|c| c.classes.len()).sum();
    println!("  -> {n_classes} classes");
    obs.add("clean.classes", n_classes as u64);
    let overlay = HashSet::new();
    let view = SenseView { base: &index, overlay: &overlay };
    let mut assignment = stage(obs, "assign_all", || assign_all(&classes, view));
    stage(obs, "local_refinement", || {
        local_refinement_guarded(
            &working,
            &ds.ontology,
            &classes,
            &mut assignment,
            view,
            0.0,
            guard,
        )
    });
    let plan = stage(obs, "beam_search", || {
        beam_search_guarded(
            &working,
            &ds.ofds,
            &classes,
            &assignment,
            &index,
            None,
            None,
            guard,
        )
    });
    println!("  -> {} candidates, frontier {}", plan.candidates.len(), plan.frontier.len());
    obs.add("clean.search_expansions", plan.candidates.len() as u64);
    obs.add("clean.frontier_points", plan.frontier.len() as u64);
    let chosen = plan.select(usize::MAX).clone();
    let overlay2: HashSet<_> = chosen.adds.iter().copied().collect();
    let mut working2 = working.clone();
    let repaired_onto = ds
        .ontology
        .with_repair(&{
            let mut r = ofd_ontology::OntologyRepair::new();
            for &(v, s) in &chosen.adds {
                r.add(s, working.pool().resolve(v));
            }
            r
        })
        .unwrap();
    let (repairs, ok) = stage(obs, "repair_data", || {
        repair_data_guarded(
            &mut working2,
            &repaired_onto,
            &ds.ofds,
            &assignment,
            &mut index,
            &overlay2,
            usize::MAX,
            10,
            guard,
        )
    });
    println!("  -> {} repairs, converged={ok}", repairs.len());
    obs.add("clean.repairs_applied", repairs.len() as u64);
    obs.add("clean.ontology_adds", chosen.adds.len() as u64);
    if let Some(i) = guard.interrupt() {
        println!("INCOMPLETE: interrupted ({i}); results above are sound but partial");
        obs.inc(&format!("guard.interrupt.{}", i.label()));
    }
    emit_obs(&probe);
}
