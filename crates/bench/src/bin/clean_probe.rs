//! Phase-level timing probe for OFDClean at scale.
//! `clean_probe [N] [--timeout-ms MS] [--max-work W]`; with limits set the
//! guarded phases stop at their next checkpoint and the probe marks the run
//! INCOMPLETE.

use std::collections::HashSet;
use std::io::Write;
use std::time::Instant;

use ofd_clean::{
    assign_all, beam_search_guarded, build_classes, local_refinement_guarded, repair_data_guarded,
    SenseView,
};
use ofd_core::{ExecGuard, GuardConfig, SenseIndex};
use ofd_datagen::{clinical, PresetConfig};

fn stage<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("{name}: {:.2?}", start.elapsed());
    std::io::stdout().flush().ok();
    out
}

/// Parses `[N] [--timeout-ms MS] [--max-work W] [--max-rss-mib M]`.
fn parse_args(default_n: usize) -> (usize, ExecGuard) {
    let mut n = default_n;
    let mut cfg = GuardConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeout-ms" => {
                let ms: u64 = args.next().and_then(|v| v.parse().ok()).expect("--timeout-ms MS");
                cfg.timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--max-work" => {
                cfg.max_work = args.next().and_then(|v| v.parse().ok());
            }
            "--max-rss-mib" => {
                cfg.max_rss_mib = args.next().and_then(|v| v.parse().ok());
            }
            other => {
                if let Ok(v) = other.parse() {
                    n = v;
                }
            }
        }
    }
    (n, ExecGuard::new(cfg))
}

fn main() {
    let (n, guard) = parse_args(20_000);
    let mut ds = clinical(&PresetConfig {
        n_rows: n,
        ..PresetConfig::default()
    });
    ds.degrade_ontology(0.04, 7);
    ds.inject_errors(0.03, 7);
    let working = ds.relation.clone();
    let mut index = stage("index", || SenseIndex::synonym(&working, &ds.ontology));
    let classes = stage("build_classes", || build_classes(&working, &ds.ofds));
    let n_classes: usize = classes.iter().map(|c| c.classes.len()).sum();
    println!("  -> {n_classes} classes");
    let overlay = HashSet::new();
    let view = SenseView { base: &index, overlay: &overlay };
    let mut assignment = stage("assign_all", || assign_all(&classes, view));
    stage("local_refinement", || {
        local_refinement_guarded(
            &working,
            &ds.ontology,
            &classes,
            &mut assignment,
            view,
            0.0,
            &guard,
        )
    });
    let plan = stage("beam_search", || {
        beam_search_guarded(
            &working,
            &ds.ofds,
            &classes,
            &assignment,
            &index,
            None,
            None,
            &guard,
        )
    });
    println!("  -> {} candidates, frontier {}", plan.candidates.len(), plan.frontier.len());
    let chosen = plan.select(usize::MAX).clone();
    let overlay2: HashSet<_> = chosen.adds.iter().copied().collect();
    let mut working2 = working.clone();
    let repaired_onto = ds
        .ontology
        .with_repair(&{
            let mut r = ofd_ontology::OntologyRepair::new();
            for &(v, s) in &chosen.adds {
                r.add(s, working.pool().resolve(v));
            }
            r
        })
        .unwrap();
    let (repairs, ok) = stage("repair_data", || {
        repair_data_guarded(
            &mut working2,
            &repaired_onto,
            &ds.ofds,
            &assignment,
            &mut index,
            &overlay2,
            usize::MAX,
            10,
            &guard,
        )
    });
    println!("  -> {} repairs, converged={ok}", repairs.len());
    if let Some(i) = guard.interrupt() {
        println!("INCOMPLETE: interrupted ({i}); results above are sound but partial");
    }
}
