//! Phase-level timing probe for OFDClean at scale.

use std::collections::HashSet;
use std::io::Write;
use std::time::Instant;

use ofd_clean::{assign_all, beam_search, build_classes, local_refinement, repair_data, SenseView};
use ofd_core::SenseIndex;
use ofd_datagen::{clinical, PresetConfig};

fn stage<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("{name}: {:.2?}", start.elapsed());
    std::io::stdout().flush().ok();
    out
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let mut ds = clinical(&PresetConfig {
        n_rows: n,
        ..PresetConfig::default()
    });
    ds.degrade_ontology(0.04, 7);
    ds.inject_errors(0.03, 7);
    let working = ds.relation.clone();
    let mut index = stage("index", || SenseIndex::synonym(&working, &ds.ontology));
    let classes = stage("build_classes", || build_classes(&working, &ds.ofds));
    let n_classes: usize = classes.iter().map(|c| c.classes.len()).sum();
    println!("  -> {n_classes} classes");
    let overlay = HashSet::new();
    let view = SenseView { base: &index, overlay: &overlay };
    let mut assignment = stage("assign_all", || assign_all(&classes, view));
    stage("local_refinement", || {
        local_refinement(&working, &ds.ontology, &classes, &mut assignment, view, 0.0)
    });
    let plan = stage("beam_search", || {
        beam_search(&working, &ds.ofds, &classes, &assignment, &index, None, None)
    });
    println!("  -> {} candidates, frontier {}", plan.candidates.len(), plan.frontier.len());
    let chosen = plan.select(usize::MAX).clone();
    let overlay2: HashSet<_> = chosen.adds.iter().copied().collect();
    let mut working2 = working.clone();
    let repaired_onto = ds
        .ontology
        .with_repair(&{
            let mut r = ofd_ontology::OntologyRepair::new();
            for &(v, s) in &chosen.adds {
                r.add(s, working.pool().resolve(v));
            }
            r
        })
        .unwrap();
    let (repairs, ok) = stage("repair_data", || {
        repair_data(
            &mut working2,
            &repaired_onto,
            &ds.ofds,
            &assignment,
            &mut index,
            &overlay2,
            usize::MAX,
            10,
        )
    });
    println!("  -> {} repairs, converged={ok}", repairs.len());
}
