//! Request decoding and engine invocation for the job endpoints.
//!
//! A job carries its inputs inline (CSV text, ontology text, OFD specs)
//! so the server holds no session state — every piece of durable state
//! lives in the checkpoint directory, keyed by a fingerprint of the
//! request, which is what makes kill/restart resume work: the same
//! request sent to a restarted server maps to the same per-job
//! [`SnapshotStore`] and the engine's own input fingerprint decides
//! whether the snapshot is resumable.
//!
//! Support values are reported both as JSON floats (for humans) and as
//! raw IEEE-754 bit patterns (`support_bits`), the same trick the
//! checkpoint layer uses: clients asserting byte-identical resume compare
//! the bits and sidestep float formatting entirely.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ofd_clean::{ofd_clean, OfdCleanConfig};
use ofd_core::{
    CheckpointOptions, ExecGuard, FaultPlan, Fingerprint, Interrupt, Obs, Ofd, OfdKind, Relation,
    Schema, SnapshotStore, Validator,
};
use ofd_datagen::csv;
use ofd_discovery::{DiscoveryOptions, FastOfd};
use ofd_ontology::{parse_ontology, Ontology};
use serde_json::{json, Value};

use crate::catalog::{Catalog, CatalogEntry};

/// The job endpoints behind admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/discover` — FastOFD lattice traversal.
    Discover,
    /// `POST /v1/clean` — OFDClean repair.
    Clean,
    /// `POST /v1/validate` — per-OFD validation.
    Validate,
    /// `POST /v1/append` — streaming session: insert rows / update cells.
    Append,
    /// `POST /v1/retract` — streaming session: remove rows.
    Retract,
}

/// Number of job endpoints (size of the breaker array).
pub const ENDPOINT_COUNT: usize = 5;

/// Every endpoint, in [`Endpoint::index`] order — the one place that
/// enumerates them, so per-endpoint arrays iterate without a hand-kept
/// index match.
pub const ENDPOINTS: [Endpoint; ENDPOINT_COUNT] = [
    Endpoint::Discover,
    Endpoint::Clean,
    Endpoint::Validate,
    Endpoint::Append,
    Endpoint::Retract,
];

impl Endpoint {
    /// Routes a request path to its endpoint.
    pub fn from_path(path: &str) -> Option<Endpoint> {
        match path {
            "/v1/discover" => Some(Endpoint::Discover),
            "/v1/clean" => Some(Endpoint::Clean),
            "/v1/validate" => Some(Endpoint::Validate),
            "/v1/append" => Some(Endpoint::Append),
            "/v1/retract" => Some(Endpoint::Retract),
            _ => None,
        }
    }

    /// Stable slug used in responses and metrics labels.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Discover => "discover",
            Endpoint::Clean => "clean",
            Endpoint::Validate => "validate",
            Endpoint::Append => "append",
            Endpoint::Retract => "retract",
        }
    }

    /// Dense index into per-endpoint arrays (breakers).
    pub fn index(self) -> usize {
        match self {
            Endpoint::Discover => 0,
            Endpoint::Clean => 1,
            Endpoint::Validate => 2,
            Endpoint::Append => 3,
            Endpoint::Retract => 4,
        }
    }
}

/// What the worker needs to know about a finished job beyond its body.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobOutcome {
    /// The engine returned a sound partial result (`INCOMPLETE`).
    pub incomplete: bool,
    /// The run restored state from a checkpoint before continuing.
    pub resumed: bool,
    /// Why the run stopped early, when `incomplete`.
    pub interrupt: Option<Interrupt>,
}

/// A request the handler rejected before running an engine. Client
/// errors — they map to 400 and never move the circuit breaker.
#[derive(Debug)]
pub struct BadRequest(pub String);

/// A handler rejection with an HTTP classification. Neither variant moves
/// the circuit breaker — both describe the request, not endpoint health.
#[derive(Debug)]
pub enum JobError {
    /// Malformed request → 400.
    BadRequest(String),
    /// The request's view of session state is stale (wrong `old` value,
    /// retracted row index) → 409, retry after refreshing.
    Conflict(String),
}

impl From<BadRequest> for JobError {
    fn from(e: BadRequest) -> JobError {
        JobError::BadRequest(e.0)
    }
}

impl JobError {
    /// The rejection message.
    pub fn message(&self) -> &str {
        match self {
            JobError::BadRequest(m) | JobError::Conflict(m) => m,
        }
    }
}

/// Everything a handler needs besides the request body.
pub struct JobContext {
    /// Per-request guard (deadline from the server budget; cancel on
    /// client disconnect or drain).
    pub guard: ExecGuard,
    /// Server-wide metrics handle.
    pub obs: Obs,
    /// Seeded fault plan (inert in production).
    pub faults: FaultPlan,
    /// Root checkpoint directory; `None` disables checkpointing.
    pub checkpoint_root: Option<PathBuf>,
    /// Dataset catalog, when the server has one; lets requests reference
    /// `"dataset": "name@version"` instead of shipping rows inline.
    pub catalog: Option<Arc<Catalog>>,
    /// In-memory streaming sessions for `/v1/append` / `/v1/retract`
    /// (their durable state lives under `checkpoint_root`).
    pub sessions: Arc<crate::stream::StreamSessions>,
    /// Sibling workers of a multi-host fleet. When a job's checkpoint
    /// directory is empty locally, the dead owner's newest snapshot is
    /// fetched from here before falling back to re-execution.
    pub peers: Vec<std::net::SocketAddr>,
    /// Connect/read deadlines for those peer conversations.
    pub peer_timeouts: crate::peers::PeerTimeouts,
}

/// Runs `endpoint` on `body`, returning the response body and outcome.
pub fn execute(
    endpoint: Endpoint,
    body: &Value,
    ctx: &JobContext,
) -> Result<(Value, JobOutcome), JobError> {
    // Chaos hook for the circuit-breaker path: when (and only when) the
    // server was started with an active fault plan, a request carrying
    // `"inject_panic": true` panics inside the handler. The worker's
    // catch_unwind turns it into a 500 and a breaker failure — the soak
    // harness uses this to drive endpoints through open/half-open/closed.
    if ctx.faults.is_active()
        && field(body, "inject_panic").and_then(Value::as_bool) == Some(true)
    {
        panic!("{}", ofd_core::INJECTED_PANIC);
    }
    match endpoint {
        Endpoint::Discover => discover(body, ctx).map_err(JobError::from),
        Endpoint::Clean => clean(body, ctx).map_err(JobError::from),
        Endpoint::Validate => validate(body, ctx).map_err(JobError::from),
        Endpoint::Append => crate::stream::append(body, ctx),
        Endpoint::Retract => crate::stream::retract(body, ctx),
    }
}

// ---------------------------------------------------------------- inputs

pub(crate) fn field<'a>(body: &'a Value, name: &str) -> Option<&'a Value> {
    body.get(name).filter(|v| !v.is_null())
}

pub(crate) fn required_str<'a>(body: &'a Value, name: &str) -> Result<&'a str, BadRequest> {
    field(body, name)
        .and_then(Value::as_str)
        .ok_or_else(|| BadRequest(format!("missing required string field {name:?}")))
}

pub(crate) fn opt_str<'a>(body: &'a Value, name: &str) -> Result<Option<&'a str>, BadRequest> {
    match field(body, name) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| BadRequest(format!("field {name:?} must be a string"))),
    }
}

pub(crate) fn opt_u64(body: &Value, name: &str) -> Result<Option<u64>, BadRequest> {
    match field(body, name) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| BadRequest(format!("field {name:?} must be a non-negative integer"))),
    }
}

pub(crate) fn opt_f64(body: &Value, name: &str) -> Result<Option<f64>, BadRequest> {
    match field(body, name) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| BadRequest(format!("field {name:?} must be a number"))),
    }
}

/// A request's resolved data inputs: parsed rows and ontology, plus the
/// raw texts that key the checkpoint fingerprint. Inline requests own
/// their parse; catalog references share the interned [`CatalogEntry`],
/// so a hot dataset is parsed once per process, not once per request.
// One short-lived value per admitted job; the inline variant's size is
// irrelevant next to the parse it holds, so boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Inputs<'a> {
    Inline {
        rel: Relation,
        onto: Ontology,
        csv: &'a str,
        onto_text: &'a str,
    },
    Cataloged(Arc<CatalogEntry>),
}

impl Inputs<'_> {
    pub(crate) fn rel(&self) -> &Relation {
        match self {
            Inputs::Inline { rel, .. } => rel,
            Inputs::Cataloged(e) => &e.relation,
        }
    }

    pub(crate) fn onto(&self) -> &Ontology {
        match self {
            Inputs::Inline { onto, .. } => onto,
            Inputs::Cataloged(e) => &e.ontology_parsed,
        }
    }

    /// The CSV text — resolved, not the reference — so a job shipped
    /// inline and the same job shipped as `name@version` fingerprint to
    /// the *same* checkpoint directory and can adopt each other's
    /// snapshots.
    pub(crate) fn csv_text(&self) -> &str {
        match self {
            Inputs::Inline { csv, .. } => csv,
            Inputs::Cataloged(e) => &e.csv,
        }
    }

    pub(crate) fn onto_text(&self) -> &str {
        match self {
            Inputs::Inline { onto_text, .. } => onto_text,
            Inputs::Cataloged(e) => &e.ontology,
        }
    }

    /// `"name@version"` echo for responses; `Null` for inline inputs.
    pub(crate) fn dataset_field(&self) -> Value {
        match self {
            Inputs::Inline { .. } => Value::Null,
            Inputs::Cataloged(e) => json!(format!("{}@{}", e.name, e.version)),
        }
    }
}

pub(crate) fn load_inputs<'a>(body: &'a Value, ctx: &JobContext) -> Result<Inputs<'a>, BadRequest> {
    if let Some(reference) = opt_str(body, "dataset")? {
        if field(body, "csv").is_some() {
            return Err(BadRequest(
                "request carries both \"dataset\" and inline \"csv\"; pick one".into(),
            ));
        }
        let catalog = ctx.catalog.as_ref().ok_or_else(|| {
            BadRequest(
                "no dataset catalog on this server (start it with --checkpoint-dir)".into(),
            )
        })?;
        let entry = catalog
            .resolve(reference)
            .map_err(|e| BadRequest(format!("dataset: {}", e.message())))?;
        return Ok(Inputs::Cataloged(entry));
    }
    let csv_text = required_str(body, "csv")?;
    let rel = csv::read_csv(csv_text).map_err(|e| BadRequest(format!("csv: {e}")))?;
    let onto_text = opt_str(body, "ontology")?.unwrap_or("");
    let onto = if onto_text.is_empty() {
        Ontology::empty()
    } else {
        parse_ontology(onto_text).map_err(|e| BadRequest(format!("ontology: {e}")))?
    };
    Ok(Inputs::Inline {
        rel,
        onto,
        csv: csv_text,
        onto_text,
    })
}

/// Parses the `"ofds": ["A,B->C", ...]` array (inheritance when `theta`
/// is present, synonym otherwise) — the same grammar as the CLI's
/// `--ofd` flag.
fn parse_ofds(body: &Value, schema: &Schema) -> Result<Vec<Ofd>, BadRequest> {
    let theta = opt_u64(body, "theta")?.map(|t| t as usize);
    let specs = field(body, "ofds")
        .and_then(Value::as_array)
        .ok_or_else(|| BadRequest("missing required array field \"ofds\"".into()))?;
    let mut strings = Vec::with_capacity(specs.len());
    for spec in specs {
        strings.push(
            spec.as_str()
                .ok_or_else(|| BadRequest("\"ofds\" entries must be strings".into()))?,
        );
    }
    parse_spec_list(&strings, theta, schema)
}

/// Parses `"A,B->C"` spec strings into [`Ofd`]s (inheritance when `theta`
/// is present, synonym otherwise) — shared by the batch endpoints and the
/// streaming sessions, which persist their Σ as exactly these strings.
pub(crate) fn parse_spec_list(
    specs: &[&str],
    theta: Option<usize>,
    schema: &Schema,
) -> Result<Vec<Ofd>, BadRequest> {
    let mut out = Vec::with_capacity(specs.len());
    for &spec in specs {
        let (lhs, rhs) = spec
            .split_once("->")
            .ok_or_else(|| BadRequest(format!("bad OFD {spec:?}; expected \"A,B->C\"")))?;
        let lhs_set = schema
            .set(lhs.split(',').map(str::trim).filter(|s| !s.is_empty()))
            .map_err(|e| BadRequest(e.to_string()))?;
        let rhs_attr = schema
            .attr(rhs.trim())
            .map_err(|e| BadRequest(e.to_string()))?;
        out.push(match theta {
            Some(theta) => Ofd::inheritance(lhs_set, rhs_attr, theta),
            None => Ofd::synonym(lhs_set, rhs_attr),
        });
    }
    if out.is_empty() {
        return Err(BadRequest("\"ofds\" must not be empty".into()));
    }
    Ok(out)
}

// ----------------------------------------------------------- checkpoints

/// Per-job checkpoint directory: `root/job-<fnv64-hex>` keyed by a
/// fingerprint of the endpoint and every result-affecting input. Two
/// concurrent jobs with different inputs therefore never share snapshot
/// files, while a resubmitted identical request (the restart path) maps
/// back to its own directory — the engine's internal fingerprint then
/// validates that the snapshot really matches before resuming.
///
/// The fingerprint hashes *resolved* content, never worker identity or
/// the `dataset` reference syntax, which is what makes the directories
/// worker-agnostic: any fleet worker handed the same request (inline or
/// by reference) computes the same path under the shared checkpoint
/// root and can adopt a dead sibling's snapshots mid-level.
///
/// The second element of the returned pair is the snapshot *provenance*
/// (echoed as `resumed_from` in job responses): `"local"` when this
/// replica already holds snapshots for the fingerprint, `"peer"` when
/// they were just shipped over from a sibling's checkpoint root (the
/// cross-filesystem adoption path, `serve.ship.fetched`), `"none"` when
/// no snapshot survives anywhere and the engine re-executes from inputs.
fn job_checkpoint(
    ctx: &JobContext,
    endpoint: Endpoint,
    body: &Value,
    inputs: &Inputs<'_>,
) -> Result<Option<(CheckpointOptions, &'static str)>, BadRequest> {
    let Some(root) = &ctx.checkpoint_root else {
        return Ok(None);
    };
    let mut fp = Fingerprint::new();
    fp.update_str(endpoint.label());
    fp.update_str(inputs.csv_text());
    fp.update_str(inputs.onto_text());
    for opt in ["kappa", "tau"] {
        fp.update_u64(opt_f64(body, opt)?.unwrap_or(-1.0).to_bits());
    }
    for opt in ["theta", "max_level", "beam"] {
        fp.update_u64(opt_u64(body, opt)?.map_or(u64::MAX, |v| v.wrapping_add(1)));
    }
    if let Some(specs) = field(body, "ofds").and_then(Value::as_array) {
        for spec in specs {
            fp.update_str(spec.as_str().unwrap_or(""));
        }
    }
    let fp = fp.finish();
    let dir: &Path = root.as_ref();
    let mut store = SnapshotStore::new(dir.join(format!("job-{fp:016x}")));
    if ctx.faults.is_active() {
        store = store.with_faults(ctx.faults.clone());
    }
    let provenance = if store.streams().map(|s| !s.is_empty()).unwrap_or(false) {
        "local"
    } else if !ctx.peers.is_empty()
        && crate::peers::fetch_and_install(
            &ctx.peers,
            &format!("/v1/jobs/{fp:016x}/snapshot"),
            &store,
            &ctx.peer_timeouts,
        ) > 0
    {
        ctx.obs.inc("serve.ship.fetched");
        "peer"
    } else {
        "none"
    };
    // Resume is unconditional: loading is fingerprint-validated and falls
    // back to a fresh run on any mismatch, so opting in is always sound.
    Ok(Some((CheckpointOptions { store, resume: true }, provenance)))
}

// -------------------------------------------------------------- handlers

fn status_fields(outcome: &JobOutcome) -> (Value, Value) {
    (
        json!(if outcome.incomplete { "incomplete" } else { "complete" }),
        match outcome.interrupt {
            Some(i) => json!(i.label()),
            None => Value::Null,
        },
    )
}

fn discover(body: &Value, ctx: &JobContext) -> Result<(Value, JobOutcome), BadRequest> {
    let inputs = load_inputs(body, ctx)?;
    let (rel, onto) = (inputs.rel(), inputs.onto());
    let mut opts = DiscoveryOptions::new()
        .guard(ctx.guard.clone())
        .obs(ctx.obs.clone())
        .faults(ctx.faults.clone());
    if let Some(kappa) = opt_f64(body, "kappa")? {
        if !(0.0..=1.0).contains(&kappa) || kappa == 0.0 {
            return Err(BadRequest("\"kappa\" must be in (0, 1]".into()));
        }
        opts = opts.min_support(kappa);
    }
    if let Some(theta) = opt_u64(body, "theta")? {
        opts = opts.kind(OfdKind::Inheritance {
            theta: theta as usize,
        });
    }
    if let Some(level) = opt_u64(body, "max_level")? {
        opts = opts.max_level(level as usize);
    }
    if let Some(threads) = opt_u64(body, "threads")? {
        if threads == 0 {
            return Err(BadRequest("\"threads\" must be at least 1".into()));
        }
        opts = opts.threads(threads as usize);
    }
    // Hybrid pre-filter knobs. All three are result-neutral (the engine's
    // differential contract), so — like `threads` — they stay out of the
    // job fingerprint: a resubmission tuned differently still resumes the
    // same job's snapshots.
    if let Some(rounds) = opt_u64(body, "sample_rounds")? {
        opts = opts.sample_rounds(rounds as usize);
    }
    if let Some(rows) = opt_u64(body, "shard_rows")? {
        opts = opts.shard_rows(rows as usize);
    }
    if let Some(shards) = opt_u64(body, "shards")? {
        opts = opts.shards(shards as usize);
    }
    if let Some(mib) = opt_u64(body, "partition_cache_mib")? {
        opts = opts.partition_cache_mib(mib as usize);
    }
    let mut resumed_from = Value::Null;
    if let Some((ck, provenance)) = job_checkpoint(ctx, Endpoint::Discover, body, &inputs)? {
        opts = opts.checkpoint(ck);
        resumed_from = json!(provenance);
    }

    let out = FastOfd::new(rel, onto).options(opts).run();
    let outcome = JobOutcome {
        incomplete: !out.complete,
        resumed: out.resumed_from_level.is_some(),
        interrupt: out.interrupt,
    };
    let schema = rel.schema();
    let ofds: Vec<Value> = out
        .ofds
        .iter()
        .map(|d| {
            let lhs: Vec<Value> = d.ofd.lhs.iter().map(|a| json!(schema.name(a))).collect();
            json!({
                "lhs": Value::Array(lhs),
                "rhs": schema.name(d.ofd.rhs),
                "support": d.support,
                "support_bits": d.support.to_bits(),
                "level": d.level as u64,
            })
        })
        .collect();
    let (status, interrupt) = status_fields(&outcome);
    let value = json!({
        "endpoint": "discover",
        "status": status,
        "interrupt": interrupt,
        "dataset": inputs.dataset_field(),
        "ofds": Value::Array(ofds),
        "resumed_from_level": match out.resumed_from_level {
            Some(l) => json!(l as u64),
            None => Value::Null,
        },
        "snapshots_written": out.snapshots_written as u64,
        "snapshot_errors": out.snapshot_errors as u64,
        "resumed_from": resumed_from,
    });
    Ok((value, outcome))
}

fn validate(body: &Value, ctx: &JobContext) -> Result<(Value, JobOutcome), BadRequest> {
    let inputs = load_inputs(body, ctx)?;
    let (rel, onto) = (inputs.rel(), inputs.onto());
    let ofds = parse_ofds(body, rel.schema())?;
    let validator = Validator::new(rel, onto);
    let mut results = Vec::with_capacity(ofds.len());
    let mut all_satisfied = true;
    let mut outcome = JobOutcome::default();
    for ofd in &ofds {
        // One checkpoint per dependency: a validate batch interrupted by
        // drain or disconnect reports the prefix it finished.
        if let Err(i) = ctx.guard.check() {
            outcome.incomplete = true;
            outcome.interrupt = Some(i);
            break;
        }
        let v = validator.check(ofd);
        all_satisfied &= v.satisfied();
        results.push(json!({
            "ofd": ofd.display(rel.schema()),
            "satisfied": v.satisfied(),
            "support": v.support(),
            "support_bits": v.support().to_bits(),
            "violating_classes": v.violation_count() as u64,
        }));
    }
    let (status, interrupt) = status_fields(&outcome);
    let value = json!({
        "endpoint": "validate",
        "status": status,
        "interrupt": interrupt,
        "dataset": inputs.dataset_field(),
        "results": Value::Array(results),
        "all_satisfied": all_satisfied,
    });
    Ok((value, outcome))
}

fn clean(body: &Value, ctx: &JobContext) -> Result<(Value, JobOutcome), BadRequest> {
    let inputs = load_inputs(body, ctx)?;
    let (rel, onto) = (inputs.rel(), inputs.onto());
    let ofds = parse_ofds(body, rel.schema())?;
    let mut config = OfdCleanConfig {
        guard: ctx.guard.clone(),
        obs: ctx.obs.clone(),
        ..OfdCleanConfig::default()
    };
    if let Some(tau) = opt_f64(body, "tau")? {
        config.tau = tau;
    }
    if let Some(beam) = opt_u64(body, "beam")? {
        config.beam = Some(beam as usize);
    }
    let mut resumed_from = Value::Null;
    if let Some((ck, provenance)) = job_checkpoint(ctx, Endpoint::Clean, body, &inputs)? {
        config.checkpoint = Some(ck);
        resumed_from = json!(provenance);
    }

    let result = ofd_clean(rel, onto, &ofds, &config);
    let outcome = JobOutcome {
        incomplete: !result.complete,
        resumed: result.resumed_from_phase.is_some(),
        interrupt: result.interrupt,
    };
    let (status, interrupt) = status_fields(&outcome);
    let value = json!({
        "endpoint": "clean",
        "status": status,
        "interrupt": interrupt,
        "dataset": inputs.dataset_field(),
        "satisfied": result.satisfied,
        "ontology_insertions": result.ontology_dist() as u64,
        "cell_repairs": result.data_dist() as u64,
        "sense_reassignments": result.reassignments as u64,
        "resumed_from_phase": match result.resumed_from_phase {
            Some(p) => json!(p),
            None => Value::Null,
        },
        "snapshots_written": result.snapshots_written as u64,
        "snapshot_errors": result.snapshot_errors as u64,
        "resumed_from": resumed_from,
        "repaired_csv": csv::write_csv(&result.repaired),
    });
    Ok((value, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> JobContext {
        JobContext {
            guard: ExecGuard::unlimited(),
            obs: Obs::disabled(),
            faults: FaultPlan::none(),
            checkpoint_root: None,
            catalog: None,
            sessions: Arc::new(crate::stream::StreamSessions::new()),
            peers: Vec::new(),
            peer_timeouts: crate::peers::PeerTimeouts::default(),
        }
    }

    fn sample_body() -> Value {
        let ds = ofd_datagen::clinical(&ofd_datagen::PresetConfig {
            n_rows: 120,
            n_attrs: 5,
            n_ofds: 2,
            seed: 7,
            ..ofd_datagen::PresetConfig::default()
        });
        json!({
            "csv": csv::write_csv(&ds.clean),
            "ontology": ofd_ontology::write_ontology(&ds.full_ontology),
        })
    }

    #[test]
    fn discover_returns_complete_sigma_with_support_bits() {
        let (v, outcome) = discover(&sample_body(), &ctx()).expect("discover");
        assert!(!outcome.incomplete);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("complete"));
        let ofds = v.get("ofds").and_then(Value::as_array).expect("ofds");
        assert!(!ofds.is_empty(), "clinical preset plants OFDs");
        for o in ofds {
            let bits = o.get("support_bits").and_then(Value::as_u64).expect("bits");
            let support = o.get("support").and_then(Value::as_f64).expect("support");
            assert_eq!(f64::from_bits(bits), support, "bits round-trip the float");
        }
    }

    #[test]
    fn discover_under_a_tripped_guard_reports_incomplete() {
        let mut c = ctx();
        c.guard = ExecGuard::with_max_work(1);
        let (v, outcome) = discover(&sample_body(), &c).expect("discover");
        assert!(outcome.incomplete);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("incomplete"));
        assert!(v.get("interrupt").and_then(Value::as_str).is_some());
    }

    #[test]
    fn validate_checks_each_ofd() {
        let mut body = sample_body();
        if let Value::Object(fields) = &mut body {
            fields.push(("ofds".into(), json!(["CC->CTRY"])));
        }
        match validate(&body, &ctx()) {
            Ok((v, _)) => {
                let results = v.get("results").and_then(Value::as_array).expect("results");
                assert_eq!(results.len(), 1);
                assert!(results[0].get("satisfied").and_then(Value::as_bool).is_some());
            }
            // The preset's attribute names vary with config; a schema miss
            // must come back as a client error, not a panic.
            Err(BadRequest(msg)) => assert!(!msg.is_empty()),
        }
    }

    #[test]
    fn missing_csv_is_a_bad_request() {
        let err = discover(&json!({}), &ctx()).expect_err("missing csv");
        assert!(err.0.contains("csv"));
    }

    #[test]
    fn bad_ofd_spec_is_a_bad_request() {
        let mut body = sample_body();
        if let Value::Object(fields) = &mut body {
            fields.push(("ofds".into(), json!(["no-arrow-here"])));
        }
        let err = validate(&body, &ctx()).expect_err("bad spec");
        assert!(err.0.contains("expected"));
    }

    #[test]
    fn job_checkpoint_keys_by_inputs() {
        let mut c = ctx();
        c.checkpoint_root = Some(std::env::temp_dir().join("ofd-serve-ckpt-key-test"));
        let a = json!({"csv": "A,B\n1,2\n"});
        let b = json!({"csv": "A,B\n1,3\n"});
        let dir_of = |endpoint: Endpoint, body: &Value| {
            let inputs = load_inputs(body, &c).expect("inputs");
            job_checkpoint(&c, endpoint, body, &inputs)
                .expect("checkpoint")
                .expect("enabled")
                .0
                .store
                .dir()
                .to_path_buf()
        };
        assert_eq!(
            dir_of(Endpoint::Discover, &a),
            dir_of(Endpoint::Discover, &a),
            "same request, same directory"
        );
        assert_ne!(
            dir_of(Endpoint::Discover, &a),
            dir_of(Endpoint::Discover, &b),
            "different csv, different directory"
        );
        assert_ne!(
            dir_of(Endpoint::Discover, &a),
            dir_of(Endpoint::Clean, &a),
            "different endpoint, different directory"
        );
    }

    #[test]
    fn hybrid_knobs_stay_out_of_the_job_fingerprint() {
        // Resubmitting a job with different pre-filter tuning (or thread
        // count) must land in the same snapshot directory: the knobs are
        // result-neutral, so a retuned retry still resumes the original
        // job's checkpoints.
        let mut c = ctx();
        c.checkpoint_root = Some(std::env::temp_dir().join("ofd-serve-ckpt-hybrid-test"));
        let plain = json!({"csv": "A,B\n1,2\n"});
        let tuned = json!({
            "csv": "A,B\n1,2\n",
            "threads": 4u64,
            "sample_rounds": 5u64,
            "shard_rows": 1000u64,
            "shards": 3u64,
            "partition_cache_mib": 16u64,
        });
        let dir_of = |body: &Value| {
            let inputs = load_inputs(body, &c).expect("inputs");
            job_checkpoint(&c, Endpoint::Discover, body, &inputs)
                .expect("checkpoint")
                .expect("enabled")
                .0
                .store
                .dir()
                .to_path_buf()
        };
        assert_eq!(dir_of(&plain), dir_of(&tuned));
    }

    #[test]
    fn discover_with_hybrid_knobs_matches_default_sigma() {
        let (plain, _) = discover(&sample_body(), &ctx()).expect("discover");
        let mut tuned_body = sample_body();
        if let Value::Object(fields) = &mut tuned_body {
            fields.push(("sample_rounds".into(), json!(3u64)));
            fields.push(("shards".into(), json!(2u64)));
            fields.push(("threads".into(), json!(2u64)));
        }
        let (tuned, _) = discover(&tuned_body, &ctx()).expect("discover");
        assert_eq!(
            plain.get("ofds").and_then(Value::as_array),
            tuned.get("ofds").and_then(Value::as_array),
            "hybrid knobs are result-neutral through the HTTP surface"
        );
    }

    #[test]
    fn dataset_reference_without_a_catalog_is_a_bad_request() {
        let err = discover(&json!({"dataset": "flights"}), &ctx()).expect_err("no catalog");
        assert!(err.0.contains("catalog"), "actual: {}", err.0);
    }

    #[test]
    fn dataset_and_inline_csv_together_are_rejected() {
        let err = discover(&json!({"dataset": "flights", "csv": "A\n1\n"}), &ctx())
            .expect_err("ambiguous inputs");
        assert!(err.0.contains("pick one"), "actual: {}", err.0);
    }

    #[test]
    fn cataloged_and_inline_requests_share_a_checkpoint_directory() {
        let tmp = std::env::temp_dir().join("ofd-serve-ckpt-adopt-test");
        let catalog = Catalog::open(tmp.join("catalog"), FaultPlan::none(), Obs::disabled());
        let csv_text = "A,B\n1,2\n3,4\n";
        catalog.put("shared", csv_text, "").expect("put");
        let mut c = ctx();
        c.checkpoint_root = Some(tmp.clone());
        c.catalog = Some(Arc::new(catalog));
        let dir_of = |body: &Value| {
            let inputs = load_inputs(body, &c).expect("inputs");
            job_checkpoint(&c, Endpoint::Discover, body, &inputs)
                .expect("checkpoint")
                .expect("enabled")
                .0
                .store
                .dir()
                .to_path_buf()
        };
        assert_eq!(
            dir_of(&json!({"csv": csv_text})),
            dir_of(&json!({"dataset": "shared@1"})),
            "inline and by-reference requests with identical content adopt the same snapshots"
        );
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
