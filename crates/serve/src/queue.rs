//! A bounded MPMC admission queue (`Mutex<VecDeque>` + `Condvar`).
//!
//! Admission is non-blocking by design: [`BoundedQueue::try_push`] either
//! admits instantly or reports `Full` so the connection handler can shed
//! the request with a 429 + backoff hint instead of queueing unbounded
//! work. Only the worker side blocks, with a timeout so workers can
//! observe shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Returned by [`BoundedQueue::try_push`] when the queue is at capacity;
/// carries the rejected item back so the caller can respond to it.
#[derive(Debug)]
pub struct Full<T>(pub T);

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared between connection handlers (producers) and the
/// worker pool (consumers).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` items (`cap == 0` sheds everything).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Admits `item` if there is room, returning the queue depth after the
    /// push; hands the item back inside [`Full`] otherwise. Never blocks.
    pub fn try_push(&self, item: T) -> Result<usize, Full<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.cap {
            return Err(Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Waits up to `timeout` for an item. `None` means timeout or closed —
    /// callers re-check their shutdown flag and loop.
    pub fn pop(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.items.is_empty() && !inner.closed {
            let (guard, _) = self
                .ready
                .wait_timeout(inner, timeout)
                .expect("queue wait");
            inner = guard;
        }
        inner.items.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rejects future pushes and wakes all waiting consumers. Items
    /// already queued can still be popped (drain semantics).
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_when_full_and_admits_after_pop() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).expect("admit"), 1);
        assert_eq!(q.try_push(2).expect("admit"), 2);
        let Full(rejected) = q.try_push(3).expect_err("full");
        assert_eq!(rejected, 3);
        assert_eq!(q.pop(Duration::from_millis(10)), Some(1));
        assert_eq!(q.try_push(3).expect("room again"), 2);
    }

    #[test]
    fn pop_times_out_on_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert_eq!(q.pop(Duration::from_millis(5)), None);
    }

    #[test]
    fn close_rejects_pushes_but_drains_existing() {
        let q = BoundedQueue::new(4);
        q.try_push(7).expect("admit");
        q.close();
        assert!(q.try_push(8).is_err());
        assert_eq!(q.pop(Duration::from_millis(5)), Some(7));
        assert_eq!(q.pop(Duration::from_millis(5)), None);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = BoundedQueue::new(0);
        assert!(q.try_push(1).is_err());
    }

    #[test]
    fn wakes_a_blocked_consumer() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).expect("admit");
        assert_eq!(consumer.join().expect("join"), Some(42));
    }
}
