//! The resilient HTTP server: admission queue → worker pool → engines.
//!
//! Request lifecycle for the job endpoints (`/v1/*`):
//!
//! ```text
//!          conn thread                         worker pool
//!   ┌──────────────────────┐       ┌──────────────────────────────┐
//!   │ parse → drain gate → │ queue │ pop → disconnect watcher →   │
//!   │ breaker → RSS gate → │ ────▶ │ catch_unwind(engine) →       │
//!   │ guard → try_push     │  429  │ breaker verdict → respond    │
//!   └──────────────────────┘ shed  └──────────────────────────────┘
//! ```
//!
//! Every rejection path answers immediately with a backoff hint; every
//! admitted request is answered exactly once — complete, `INCOMPLETE`
//! sound partial (guard trip, drain, disconnect), or 500 after a caught
//! panic. Drain cancels the guards of queued and running jobs, so the
//! pool converges in one checkpoint interval and in-flight discovery
//! state survives in the per-job snapshot directories.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ofd_core::guard::rss_kib;
use ofd_core::{ExecGuard, FaultPlan, GuardConfig, Interrupt, Obs};
use serde_json::{json, Value};

use crate::breaker::{Admission, Breaker};
use crate::catalog::{Catalog, CatalogError};
use crate::http::{read_request, HttpError, Request, Response};
use crate::jobs::{self, Endpoint, JobContext, JobError, ENDPOINTS, ENDPOINT_COUNT};
use crate::stream::{StreamSessions, STREAM_COUNTERS};
use crate::queue::{BoundedQueue, Full};

/// Server configuration; every knob has a production-shaped default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue capacity; requests beyond it are shed with 429.
    pub queue_cap: usize,
    /// Per-request wall-clock budget (ms). A client `timeout_ms` may only
    /// lower it. The guard starts at admission, so queue wait burns the
    /// same budget the engine does.
    pub budget_ms: u64,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Load-shed when the process RSS crosses this many MiB (`None`
    /// disables the gate).
    pub rss_high_water_mib: Option<usize>,
    /// Consecutive handler panics that open an endpoint's circuit
    /// breaker (`0` disables breakers).
    pub breaker_threshold: u32,
    /// Cooldown before an open circuit admits its half-open probe (ms).
    pub breaker_cooldown_ms: u64,
    /// Root directory for per-job checkpoints (`None` disables
    /// checkpointed drain/resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Directory for the persistent dataset catalog. Defaults to
    /// `<checkpoint_dir>/catalog`; with neither set, `dataset:`
    /// references are refused (there is nowhere to persist them).
    pub catalog_dir: Option<PathBuf>,
    /// Sibling workers of a multi-host fleet (`--peers host:port,...`).
    /// Used for peer-to-peer recovery when nothing is shared through a
    /// filesystem: catalog read repair on local miss, and job/stream
    /// checkpoint shipping from the dead owner's replica.
    pub peers: Vec<SocketAddr>,
    /// How long a client may take to deliver its request head/body
    /// before the connection is abandoned (slowloris bound). Chaos runs
    /// tighten it.
    pub head_timeout_ms: u64,
    /// Connect/read deadline for peer conversations (catalog read
    /// repair, quorum confirmation, checkpoint shipping).
    pub peer_timeout_ms: u64,
    /// Seeded fault plan passed through to the engines and snapshot
    /// stores (inert by default; the soak harness sets it).
    pub faults: FaultPlan,
    /// Metrics handle backing `/metrics` and the shutdown summary.
    pub obs: Obs,
    /// Base backoff hint (ms) attached to shed responses; scaled by the
    /// queue depth so a deeper backlog pushes retries further out.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            budget_ms: 30_000,
            max_body_bytes: 16 * 1024 * 1024,
            rss_high_water_mib: None,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            checkpoint_dir: None,
            catalog_dir: None,
            peers: Vec::new(),
            head_timeout_ms: 10_000,
            peer_timeout_ms: 10_000,
            faults: FaultPlan::none(),
            obs: Obs::enabled(),
            retry_after_ms: 250,
        }
    }
}

/// The `serve.*` counters pinned by the metrics schema test; touched at
/// bind time so they are present (zero) in every `/metrics` document.
pub const SERVE_COUNTERS: [&str; 18] = [
    "serve.requests",
    "serve.admitted",
    "serve.shed",
    "serve.breaker_open",
    "serve.drained",
    "serve.resumed",
    "serve.completed",
    "serve.incomplete",
    "serve.panics",
    "serve.bad_request",
    "serve.conflict",
    "serve.catalog.put",
    "serve.catalog.hit",
    "serve.catalog.miss",
    "serve.catalog.peer_fetch",
    "serve.catalog.read_repaired",
    "serve.ship.served",
    "serve.ship.fetched",
];

/// One queued job: everything the worker needs to run and answer it.
struct Job {
    id: u64,
    endpoint: Endpoint,
    body: Value,
    stream: TcpStream,
    guard: ExecGuard,
}

struct Shared {
    cfg: ServeConfig,
    obs: Obs,
    queue: BoundedQueue<Job>,
    /// Admission closed; in-flight work being cancelled to checkpoints.
    draining: AtomicBool,
    /// Drain finished; threads should exit.
    stopping: AtomicBool,
    /// Set by `POST /admin/drain` — the run loop polls it.
    drain_requested: AtomicBool,
    /// Guards of every admitted-but-unanswered job, for drain to cancel.
    inflight: Mutex<HashMap<u64, ExecGuard>>,
    next_job: AtomicU64,
    breakers: [Breaker; ENDPOINT_COUNT],
    /// Persistent dataset catalog; `None` when no directory is
    /// configured (in-memory-only servers refuse `dataset:` references).
    catalog: Option<Arc<Catalog>>,
    /// Streaming sessions for `/v1/append` / `/v1/retract`; their
    /// durable state lives under the checkpoint directory.
    sessions: Arc<StreamSessions>,
}

impl Shared {
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Cancel queued and running jobs; each engine stops at its next
        // checkpoint and the worker answers with a sound INCOMPLETE
        // partial. Discovery state up to the last completed level is
        // already in the per-job snapshot directory.
        for guard in self.inflight.lock().expect("inflight lock").values() {
            guard.cancel();
        }
    }
}

/// Final tallies returned by [`Server::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Jobs admitted past the queue.
    pub admitted: u64,
    /// Requests shed (queue full or RSS high-water).
    pub shed: u64,
    /// Requests refused by an open circuit breaker.
    pub breaker_open: u64,
    /// Admitted jobs answered `INCOMPLETE` because drain cancelled them.
    pub drained: u64,
    /// Jobs that restored engine state from a checkpoint.
    pub resumed: u64,
}

/// A running server; dropping it without [`Server::shutdown`] leaves the
/// threads detached, so call `shutdown` (tests and binaries all do).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns the
    /// running server. `/readyz` turns 200 as soon as this returns.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let obs = cfg.obs.clone();
        for name in SERVE_COUNTERS {
            obs.touch_counter(name);
        }
        for name in STREAM_COUNTERS {
            obs.touch_counter(name);
        }
        for name in crate::netfault::NET_COUNTERS {
            obs.touch_counter(name);
        }
        // Satellite of the guard work: an RSS gate that cannot read the
        // resident set is inert — say so once, loudly, instead of letting
        // the operator believe the ceiling is enforced.
        if cfg.rss_high_water_mib.is_some() && rss_kib().is_none() {
            obs.inc("guard.rss.unavailable");
            eprintln!(
                "warning: guard.rss.unavailable: --rss-high-water-mib is inert \
                 (no readable RSS source on this platform)"
            );
        }

        // First-scrape presence for the queue gauge, like the counters.
        obs.set_gauge("serve.queue.depth", 0.0);

        let catalog_dir = cfg
            .catalog_dir
            .clone()
            .or_else(|| cfg.checkpoint_dir.as_ref().map(|d| d.join("catalog")));
        let catalog = catalog_dir.map(|dir| {
            Arc::new(
                Catalog::open(dir, cfg.faults.clone(), obs.clone())
                    .with_peers(cfg.peers.clone())
                    .with_peer_timeouts(crate::peers::PeerTimeouts::from_ms(cfg.peer_timeout_ms)),
            )
        });

        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_cap),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            inflight: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            breakers: std::array::from_fn(|_| {
                Breaker::new(
                    cfg.breaker_threshold,
                    Duration::from_millis(cfg.breaker_cooldown_ms),
                )
            }),
            catalog,
            sessions: Arc::new(StreamSessions::new()),
            obs,
            cfg,
        });

        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ofd-serve-accept".into())
                    .spawn(move || accept_loop(listener, shared))?,
            );
        }
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ofd-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))?,
            );
        }
        Ok(Server {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics handle.
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The dataset catalog, when one is configured.
    pub fn catalog(&self) -> Option<&Arc<Catalog>> {
        self.shared.catalog.as_ref()
    }

    /// Starts a graceful drain: admission closes (503), queued and
    /// running jobs are cancelled to their next checkpoint. Idempotent.
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// Whether a drain is in progress (or done).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Whether a client asked for drain via `POST /admin/drain` — the
    /// serve binaries poll this next to their SIGTERM flag.
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested.load(Ordering::SeqCst)
    }

    /// Drains, waits for every admitted job to be answered (bounded by
    /// `wait`), stops the threads and returns the final tallies.
    pub fn shutdown(mut self, wait: Duration) -> ServeSummary {
        self.shared.begin_drain();
        let deadline = Instant::now() + wait;
        while Instant::now() < deadline {
            let idle = self.shared.queue.is_empty()
                && self.shared.inflight.lock().expect("inflight lock").is_empty();
            if idle {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Exact lookups: `counter_sum` is prefix-based and would fold the
        // `serve.shed.*` reason breakdowns into `serve.shed` twice over.
        let snap = self.shared.obs.snapshot();
        let exact = |name: &str| snap.counter(name).unwrap_or(0);
        ServeSummary {
            admitted: exact("serve.admitted"),
            shed: exact("serve.shed"),
            breaker_open: exact("serve.breaker_open"),
            drained: exact("serve.drained"),
            resumed: exact("serve.resumed"),
        }
    }
}

// ------------------------------------------------------------ accept side

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                // One short-lived thread per connection for the parse +
                // admission stage only; heavy work happens in the fixed
                // worker pool. A slow client therefore cannot stall the
                // accept loop, and admission itself never blocks.
                let _ = std::thread::Builder::new()
                    .name("ofd-serve-conn".into())
                    .spawn(move || handle_connection(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn retry_after_headers(resp: Response, hint: Duration) -> Response {
    let secs = hint.as_secs() + u64::from(hint.subsec_nanos() > 0);
    resp.with_header("retry-after", secs.max(1).to_string())
}

fn shed_body(error: &str, retry_after_ms: u64) -> Value {
    json!({ "error": error, "retry_after_ms": retry_after_ms })
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let cfg = &shared.cfg;
    let req = match read_request(
        &mut stream,
        cfg.max_body_bytes,
        Duration::from_millis(cfg.head_timeout_ms.max(1)),
    ) {
        Ok(req) => req,
        // Both mean the client is gone: nothing arrived, or it hung up
        // mid-body. Neither is answerable, so no 400 goes on the wire.
        Err(HttpError::Disconnected | HttpError::Truncated) => return,
        Err(e) => {
            let status = match e {
                HttpError::HeadTooLarge => 431,
                HttpError::BodyTooLarge => 413,
                _ => 400,
            };
            let _ = Response::json(status, &json!({ "error": format!("{e}") }))
                .write_to(&mut stream);
            return;
        }
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = Response::text(200, "ok\n").write_to(&mut stream);
        }
        ("GET", "/readyz") => {
            let (status, body) = readiness(&shared);
            let _ = Response::json(status, &body).write_to(&mut stream);
        }
        ("GET", "/metrics") => {
            shared
                .obs
                .set_gauge("serve.queue.depth", shared.queue.len() as f64);
            shared.obs.set_gauge(
                "serve.inflight",
                shared.inflight.lock().expect("inflight lock").len() as f64,
            );
            let text = shared.obs.snapshot().to_json_string(true);
            let _ = Response::json_text(200, text).write_to(&mut stream);
        }
        ("POST", "/admin/drain") => {
            shared.drain_requested.store(true, Ordering::SeqCst);
            shared.begin_drain();
            let _ = Response::json(200, &json!({ "draining": true })).write_to(&mut stream);
        }
        (_, path) if path == "/v1/datasets" || path.starts_with("/v1/datasets/") => {
            handle_datasets(req, stream, &shared);
        }
        ("GET", path)
            if (path.starts_with("/v1/jobs/") || path.starts_with("/v1/streams/"))
                && path.ends_with("/snapshot") =>
        {
            handle_snapshot_transfer(&req, stream, &shared);
        }
        ("POST", path) => match Endpoint::from_path(path) {
            Some(endpoint) => admit(endpoint, req, stream, &shared),
            None => {
                let _ = Response::json(404, &json!({ "error": "unknown endpoint" }))
                    .write_to(&mut stream);
            }
        },
        _ => {
            let _ = Response::json(405, &json!({ "error": "method not allowed" }))
                .write_to(&mut stream);
        }
    }
}

/// `/readyz` tri-state: `ok` (200), `degraded` (200 — still serving, but
/// an open breaker, a full queue or RSS past the high water mean callers
/// should expect shed responses) or `draining` (503 — routers take the
/// replica out of rotation). The body always carries `ready`/`draining`
/// plus queue depth and the per-endpoint breaker states, so an operator
/// gets the shape of the trouble from one probe.
fn readiness(shared: &Shared) -> (u16, Value) {
    let draining = shared.draining.load(Ordering::SeqCst);
    let depth = shared.queue.len();
    let cap = shared.cfg.queue_cap;
    let mut breakers: Vec<(String, Value)> = Vec::with_capacity(ENDPOINT_COUNT);
    let mut any_open = false;
    for (endpoint, b) in ENDPOINTS.iter().zip(shared.breakers.iter()) {
        any_open |= b.is_open();
        breakers.push((endpoint.label().to_string(), json!(b.state_label())));
    }
    let rss_high = shared
        .cfg
        .rss_high_water_mib
        .is_some_and(|hw| rss_kib().is_some_and(|rss| rss > hw as u64 * 1024));
    let state = if draining {
        "draining"
    } else if any_open || depth >= cap || rss_high {
        "degraded"
    } else {
        "ok"
    };
    let body = json!({
        "ready": !draining,
        "draining": draining,
        "state": state,
        "queue_depth": depth as u64,
        "queue_cap": cap as u64,
        "breakers": Value::Object(breakers),
    });
    (if draining { 503 } else { 200 }, body)
}

fn catalog_error_response(e: &CatalogError) -> Response {
    let status = match e {
        CatalogError::BadRequest(_) => 400,
        CatalogError::Conflict(_) => 409,
        CatalogError::Storage(_) => 500,
    };
    Response::json(status, &json!({ "error": e.message() }))
}

/// The internal checkpoint-transfer endpoints:
/// `GET /v1/jobs/{fingerprint}/snapshot` and
/// `GET /v1/streams/{fingerprint}/snapshot` serve the newest snapshot
/// per stream from the fingerprint-keyed checkpoint directory, as one
/// JSON bundle a recovering peer installs verbatim. Because job and
/// session directories are keyed by request *content*, any replica
/// computes the same fingerprint — no name service needed to find a dead
/// owner's state, only its address. 404 when there is nothing to ship
/// (no checkpoint root, or no surviving snapshot) — the requester then
/// falls back to re-execution from inputs.
fn handle_snapshot_transfer(req: &Request, mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.obs.inc("serve.requests");
    let (kind, rest) = if let Some(rest) = req.path.strip_prefix("/v1/jobs/") {
        ("job", rest)
    } else if let Some(rest) = req.path.strip_prefix("/v1/streams/") {
        ("stream", rest)
    } else {
        let _ = Response::json(404, &json!({ "error": "unknown endpoint" })).write_to(&mut stream);
        return;
    };
    let fingerprint = rest.strip_suffix("/snapshot").unwrap_or("");
    // Fingerprints are exactly 16 hex digits; anything else is rejected
    // before it can touch the filesystem.
    if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
        let _ = Response::json(400, &json!({ "error": "bad snapshot fingerprint" }))
            .write_to(&mut stream);
        return;
    }
    let Some(root) = &shared.cfg.checkpoint_dir else {
        let _ = Response::json(404, &json!({ "error": "no checkpoint root on this server" }))
            .write_to(&mut stream);
        return;
    };
    let store = ofd_core::SnapshotStore::new(root.join(format!("{kind}-{fingerprint}")));
    match crate::peers::snapshot_bundle(&store) {
        Some(bundle) => {
            shared.obs.inc("serve.ship.served");
            let _ = Response::json(200, &bundle).write_to(&mut stream);
        }
        None => {
            let _ = Response::json(404, &json!({ "error": "no snapshots for this fingerprint" }))
                .write_to(&mut stream);
        }
    }
}

/// The dataset catalog API: `PUT /v1/datasets/{name}` registers a
/// version, `GET /v1/datasets` lists names, `GET /v1/datasets/{name}`
/// (or `{name}@{version}`) describes one. Reads stay open during drain —
/// they are cheap and a draining replica may still be asked "what do you
/// have?" — but writes are refused like any other new work.
fn handle_datasets(req: Request, mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.obs.inc("serve.requests");
    let Some(catalog) = &shared.catalog else {
        let _ = Response::json(
            503,
            &json!({ "error": "no dataset catalog on this server (start it with --checkpoint-dir)" }),
        )
        .write_to(&mut stream);
        return;
    };
    let reference = req
        .path
        .strip_prefix("/v1/datasets")
        .map(|r| r.trim_start_matches('/'))
        .unwrap_or("");
    let resp = match (req.method.as_str(), reference) {
        ("GET", "") => match catalog.list() {
            Ok(names) => Response::json(200, &json!({ "datasets": names })),
            Err(e) => catalog_error_response(&e),
        },
        ("GET", reference) if !reference.contains('/') => match catalog.describe(reference) {
            Ok(meta) => Response::json(200, &meta),
            Err(e) => catalog_error_response(&e),
        },
        // Internal transfer endpoint: the raw stored payload of one
        // version, for a peer repairing a missed replicated write.
        ("GET", path) => match path.split('/').collect::<Vec<_>>().as_slice() {
            [name, version, "snapshot"] => match version.parse::<u64>() {
                Ok(version) => match catalog.snapshot_payload(name, version) {
                    Ok(payload) => {
                        shared.obs.inc("serve.ship.served");
                        Response::json(200, &payload)
                    }
                    Err(e) => catalog_error_response(&e),
                },
                Err(_) => Response::json(400, &json!({ "error": "bad version in path" })),
            },
            // Quorum-confirmation probe: does this replica hold the
            // version, and has it been committed? Readers repairing a
            // pending version poll this across the fleet.
            [name, version, "stat"] => match version.parse::<u64>() {
                Ok(version) => match catalog.stat(name, version) {
                    Ok((present, committed)) => Response::json(
                        200,
                        &json!({
                            "name": *name,
                            "version": version,
                            "present": present,
                            "committed": committed,
                        }),
                    ),
                    Err(e) => catalog_error_response(&e),
                },
                Err(_) => Response::json(400, &json!({ "error": "bad version in path" })),
            },
            _ => Response::json(404, &json!({ "error": "unknown catalog path" })),
        },
        // Second phase of a replicated write: flip a pending version to
        // committed once the router saw a quorum of acks. Idempotent.
        ("POST", path) => match path.split('/').collect::<Vec<_>>().as_slice() {
            [name, version, "commit"] => match version.parse::<u64>() {
                Ok(version) => match catalog.commit_version(name, version) {
                    Ok(committed) => Response::json(
                        200,
                        &json!({ "name": *name, "version": version, "committed": committed }),
                    ),
                    Err(e) => catalog_error_response(&e),
                },
                Err(_) => Response::json(400, &json!({ "error": "bad version in path" })),
            },
            _ => Response::json(404, &json!({ "error": "unknown catalog path" })),
        },
        // Quorum-write rollback: `DELETE /v1/datasets/{name}/{version}`
        // removes one version. Not drain-gated — rollback is how a
        // failed replicated write avoids leaving a torn version behind,
        // and it must work on a replica that is on its way out.
        ("DELETE", path) => match path.split_once('/') {
            Some((name, version)) if !version.contains('/') => match version.parse::<u64>() {
                Ok(version) => match catalog.delete_version(name, version) {
                    Ok(deleted) => Response::json(
                        200,
                        &json!({ "name": name, "version": version, "deleted": deleted }),
                    ),
                    Err(e) => catalog_error_response(&e),
                },
                Err(_) => Response::json(400, &json!({ "error": "bad version in path" })),
            },
            _ => Response::json(400, &json!({ "error": "expected /v1/datasets/{name}/{version}" })),
        },
        ("PUT", "") => Response::json(400, &json!({ "error": "missing dataset name in path" })),
        ("PUT", name) if !name.contains('/') => {
            if shared.draining.load(Ordering::SeqCst) {
                let resp = Response::json(
                    503,
                    &shed_body("draining", shared.cfg.retry_after_ms),
                );
                let _ = retry_after_headers(
                    resp,
                    Duration::from_millis(shared.cfg.retry_after_ms),
                )
                .write_to(&mut stream);
                return;
            }
            match serde_json::from_str::<Value>(std::str::from_utf8(&req.body).unwrap_or("")) {
                Err(e) => Response::json(400, &json!({ "error": format!("body: {e}") })),
                Ok(body) => {
                    let csv_text = body.get("csv").and_then(Value::as_str).unwrap_or("");
                    let onto_text = body.get("ontology").and_then(Value::as_str).unwrap_or("");
                    // A body `version` marks the replicated-write path:
                    // the router pinned one version number for the whole
                    // fleet, and this replica applies it idempotently.
                    let put = match body.get("version").and_then(Value::as_u64) {
                        Some(version) => catalog.put_pinned(name, csv_text, onto_text, version),
                        None => catalog.put(name, csv_text, onto_text),
                    };
                    match put {
                        Ok(entry) => Response::json(
                            200,
                            &json!({
                                "name": entry.name.clone(),
                                "version": entry.version,
                                "fingerprint": format!("{:016x}", entry.fingerprint),
                            }),
                        ),
                        Err(e) => catalog_error_response(&e),
                    }
                }
            }
        }
        _ => Response::json(405, &json!({ "error": "method not allowed" })),
    };
    let _ = resp.write_to(&mut stream);
}

/// The admission pipeline for a job endpoint; answers inline on every
/// rejection path, enqueues on success.
fn admit(endpoint: Endpoint, req: Request, mut stream: TcpStream, shared: &Arc<Shared>) {
    let cfg = &shared.cfg;
    let obs = &shared.obs;
    obs.inc("serve.requests");

    // Gate 1: drain. New work is refused outright so the pool converges.
    if shared.draining.load(Ordering::SeqCst) {
        let resp = Response::json(503, &shed_body("draining", cfg.retry_after_ms));
        let _ = retry_after_headers(resp, Duration::from_millis(cfg.retry_after_ms))
            .write_to(&mut stream);
        return;
    }

    // Gate 2: circuit breaker — a repeatedly-panicking endpoint must not
    // keep consuming worker slots the healthy endpoints need.
    let breaker = &shared.breakers[endpoint.index()];
    if let Admission::Rejected { retry_after } = breaker.admit() {
        obs.inc("serve.breaker_open");
        let resp = Response::json(
            503,
            &json!({
                "error": "circuit_open",
                "endpoint": endpoint.label(),
                "retry_after_ms": retry_after.as_millis() as u64,
            }),
        );
        let _ = retry_after_headers(resp, retry_after).write_to(&mut stream);
        return;
    }

    // Gate 3: memory high-water. Shed before parsing the body into a
    // long-lived job — admission is the last point where refusing is
    // cheap.
    if let Some(hw_mib) = cfg.rss_high_water_mib {
        if rss_kib().is_some_and(|rss| rss > hw_mib as u64 * 1024) {
            obs.inc("serve.shed");
            obs.inc("serve.shed.rss");
            breaker.probe_aborted();
            let resp = Response::json(429, &shed_body("rss_high_water", cfg.retry_after_ms));
            let _ = retry_after_headers(resp, Duration::from_millis(cfg.retry_after_ms))
                .write_to(&mut stream);
            return;
        }
    }

    let body: Value = match serde_json::from_str(
        std::str::from_utf8(&req.body).unwrap_or(""),
    ) {
        Ok(v) => v,
        Err(e) => {
            obs.inc("serve.bad_request");
            breaker.probe_aborted();
            let _ = Response::json(400, &json!({ "error": format!("body: {e}") }))
                .write_to(&mut stream);
            return;
        }
    };

    // The guard starts here: queue wait spends the same budget the engine
    // does, so a request stuck behind a backlog times out instead of
    // running long after its client gave up. Clients may lower (never
    // raise) the server budget.
    let budget_ms = match body.get("timeout_ms").and_then(Value::as_u64) {
        Some(client_ms) => client_ms.min(cfg.budget_ms),
        None => cfg.budget_ms,
    };
    let guard = ExecGuard::new(GuardConfig {
        timeout: Some(Duration::from_millis(budget_ms)),
        ..GuardConfig::default()
    });

    let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
    shared
        .inflight
        .lock()
        .expect("inflight lock")
        .insert(id, guard.clone());
    // Drain may have raced admission: a job registered after the cancel
    // sweep still gets cancelled here, preserving "no new work after
    // drain" without a queue-wide lock.
    if shared.draining.load(Ordering::SeqCst) {
        guard.cancel();
    }

    let job = Job {
        id,
        endpoint,
        body,
        stream,
        guard,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            obs.inc("serve.admitted");
            obs.set_gauge("serve.queue.depth", depth as f64);
        }
        Err(Full(mut job)) => {
            // Gate 4: bounded queue. The backoff hint scales with the
            // backlog so clients spread their retries.
            shared
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(&job.id);
            obs.inc("serve.shed");
            obs.inc("serve.shed.queue_full");
            breaker.probe_aborted();
            let hint_ms = cfg.retry_after_ms * (1 + shared.queue.len() as u64);
            let resp = Response::json(429, &shed_body("queue_full", hint_ms));
            let _ = retry_after_headers(resp, Duration::from_millis(hint_ms))
                .write_to(&mut job.stream);
        }
    }
}

// ------------------------------------------------------------ worker side

fn worker_loop(shared: Arc<Shared>) {
    loop {
        match shared.queue.pop(Duration::from_millis(50)) {
            Some(job) => execute_job(job, &shared),
            None => {
                if shared.stopping.load(Ordering::SeqCst) && shared.queue.is_empty() {
                    return;
                }
            }
        }
    }
}

/// Watches the client socket while the engine runs; EOF means the client
/// went away, and the guard is cancelled so the engine stops burning a
/// worker slot on an answer nobody will read.
fn spawn_disconnect_watcher(
    job_stream: &TcpStream,
    guard: ExecGuard,
    obs: Obs,
    done: Arc<AtomicBool>,
) -> Option<JoinHandle<()>> {
    let mut watch = job_stream.try_clone().ok()?;
    if watch
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return None;
    }
    std::thread::Builder::new()
        .name("ofd-serve-watch".into())
        .spawn(move || {
            use std::io::Read;
            let mut buf = [0u8; 64];
            while !done.load(Ordering::SeqCst) {
                match watch.read(&mut buf) {
                    Ok(0) => {
                        obs.inc("serve.client_disconnect");
                        guard.cancel();
                        return;
                    }
                    // Unexpected extra bytes: ignore them, keep watching.
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => return,
                }
            }
        })
        .ok()
}

fn execute_job(mut job: Job, shared: &Arc<Shared>) {
    let obs = &shared.obs;
    let done = Arc::new(AtomicBool::new(false));
    let watcher = spawn_disconnect_watcher(&job.stream, job.guard.clone(), obs.clone(), done.clone());

    let ctx = JobContext {
        guard: job.guard.clone(),
        obs: obs.clone(),
        faults: shared.cfg.faults.clone(),
        checkpoint_root: shared.cfg.checkpoint_dir.clone(),
        catalog: shared.catalog.clone(),
        sessions: shared.sessions.clone(),
        peers: shared.cfg.peers.clone(),
        peer_timeouts: crate::peers::PeerTimeouts::from_ms(shared.cfg.peer_timeout_ms),
    };
    let span = obs.span(&format!("serve.job.{}", job.endpoint.label()));
    let result = catch_unwind(AssertUnwindSafe(|| {
        jobs::execute(job.endpoint, &job.body, &ctx)
    }));
    drop(span);
    done.store(true, Ordering::SeqCst);
    if let Some(w) = watcher {
        let _ = w.join();
    }

    let breaker = &shared.breakers[job.endpoint.index()];
    let response = match result {
        Ok(Ok((value, outcome))) => {
            breaker.on_success();
            if outcome.incomplete {
                obs.inc("serve.incomplete");
                // A cancel observed while draining is the drain path: the
                // job's progress is in its checkpoint directory, waiting
                // for the restarted server.
                if outcome.interrupt == Some(Interrupt::Cancelled)
                    && shared.draining.load(Ordering::SeqCst)
                {
                    obs.inc("serve.drained");
                }
            } else {
                obs.inc("serve.completed");
            }
            if outcome.resumed {
                obs.inc("serve.resumed");
            }
            Response::json(200, &value)
        }
        Ok(Err(JobError::BadRequest(msg))) => {
            // Client errors say nothing about endpoint health: the
            // breaker treats them as a successful handler run.
            breaker.on_success();
            obs.inc("serve.bad_request");
            Response::json(400, &json!({ "error": msg }))
        }
        Ok(Err(JobError::Conflict(msg))) => {
            // A stale client view of a streaming session — also a client
            // error; the session itself stays healthy and usable.
            breaker.on_success();
            obs.inc("serve.conflict");
            Response::json(409, &json!({ "error": msg }))
        }
        Err(_panic) => {
            obs.inc("serve.panics");
            if breaker.on_failure() {
                obs.inc("serve.breaker_opened");
            }
            job.guard.trip_external(Interrupt::WorkerPanic);
            Response::json(
                500,
                &json!({ "error": "internal", "endpoint": job.endpoint.label() }),
            )
        }
    };
    let _ = response.write_to(&mut job.stream);
    // Unregister only after the response hit the socket: shutdown's
    // "all answered" wait keys off this map.
    shared
        .inflight
        .lock()
        .expect("inflight lock")
        .remove(&job.id);
}

// --------------------------------------------------------------- signals

#[cfg(unix)]
mod termination {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    static FLAG: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        FLAG.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn termination_flag() -> &'static AtomicBool {
        INSTALL.call_once(|| unsafe {
            signal(15, on_signal as *const () as usize); // SIGTERM
            signal(2, on_signal as *const () as usize); // SIGINT
        });
        &FLAG
    }
}

#[cfg(not(unix))]
mod termination {
    use std::sync::atomic::AtomicBool;

    static FLAG: AtomicBool = AtomicBool::new(false);

    pub fn termination_flag() -> &'static AtomicBool {
        // No signals to hook; the flag simply never flips and binaries
        // fall back to /admin/drain.
        &FLAG
    }
}

/// Installs SIGTERM/SIGINT handlers (first call only) and returns the
/// flag they flip. Serve binaries poll it next to
/// [`Server::drain_requested`] and run [`Server::shutdown`] when either
/// fires; on platforms without Unix signals the flag never flips and
/// `POST /admin/drain` is the drain path.
pub fn termination_flag() -> &'static AtomicBool {
    termination::termination_flag()
}
