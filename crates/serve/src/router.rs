//! The shard router: one front process, N worker replicas.
//!
//! ```text
//!                       ┌────────────┐  consistent hash   ┌──────────┐
//!   clients ──────────▶ │   router   │ ─────────────────▶ │ worker 0 │──┐
//!            POST /v1/* │ (no engine │   retry next       ├──────────┤  │ shared
//!            PUT  /v1/  │   inside)  │   replica on       │ worker 1 │──┤ checkpoint
//!            datasets/* │            │   connect/5xx      ├──────────┤  │ + catalog
//!                       └─────┬──────┘                    │ worker N │──┘ root
//!                             │ supervises (respawn,      └──────────┘
//!                             ▼  restart-storm breaker)
//!                       [Supervisor]
//! ```
//!
//! Routing is by **dataset content fingerprint**: inline bodies hash
//! their CSV/ontology text, `"dataset": "name@version"` references
//! resolve through the shared catalog to the same digest, and catalog
//! API calls hash the dataset name — so a dataset's jobs, versions and
//! checkpoint traffic land on one worker in the steady state, keeping
//! its interned parse and partition caches hot. The hash ring hashes
//! *slot indices*, not addresses, so a respawned worker (fresh port)
//! inherits its predecessor's ring segment.
//!
//! Failover is what makes the fleet resilient rather than just wide:
//! a connect failure, i/o error mid-reply, or 5xx moves the request to
//! the next distinct replica on the ring after a backoff
//! (`serve.router.retried`). Because every worker shares one checkpoint
//! root and job directories are keyed by request content (never worker
//! identity), the replica that inherits a SIGKILLed worker's request
//! **adopts its checkpoint** and resumes mid-level — observed as a 200
//! with a non-null `resumed_from_*` field on a retried request, counted
//! as `serve.router.adopted`.
//!
//! The router never parses engine results; it relays worker reply bytes
//! verbatim, which is why byte-identical-response assertions hold
//! through it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ofd_core::{fnv1a64, FaultPlan, Obs};
use serde_json::{json, Value};

use crate::catalog::{content_fingerprint, Catalog};
use crate::http::{read_request, HttpError, Request, Response};
use crate::netfault::NET_COUNTERS;
use crate::peers::PeerTimeouts;
use crate::retry::{RetryPolicy, RETRIES_EXHAUSTED};
use crate::supervisor::Supervisor;

/// The `serve.router.*` counters pinned by the metrics schema test;
/// touched at bind so they are present (zero) in every router
/// `/metrics` document.
pub const ROUTER_COUNTERS: [&str; 7] = [
    "serve.router.routed",
    "serve.router.retried",
    "serve.router.respawned",
    "serve.router.adopted",
    "serve.router.ring.ejected",
    "serve.router.ring.readmitted",
    "serve.catalog.replicated_partial",
];

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the router plays
    /// by the same OS-assigned-port rule as its workers).
    pub addr: String,
    /// Virtual nodes per worker slot on the hash ring; more vnodes
    /// smooth the key distribution across slots.
    pub vnodes_per_slot: usize,
    /// Base backoff between failover attempts (grows linearly).
    pub retry_backoff_ms: u64,
    /// Extra failover passes over the replica list after the first
    /// (covers the window where every replica is mid-respawn).
    pub extra_rounds: usize,
    /// TCP connect timeout per forward attempt.
    pub connect_timeout_ms: u64,
    /// Read/write timeout on a forwarded request (must cover the worker
    /// job budget, or the router gives up on jobs that would finish).
    /// Clamped per attempt to the client's remaining `timeout_ms`
    /// deadline when one is present.
    pub forward_timeout_ms: u64,
    /// How long the router waits for a client to finish sending its
    /// request head/body before giving up on the connection.
    pub head_timeout_ms: u64,
    /// Connect/read deadline for router→worker peer conversations
    /// (quorum fan-out, commit round, rollback).
    pub peer_timeout_ms: u64,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Worker `/readyz` probe cadence.
    pub probe_interval_ms: u64,
    /// Consecutive failed probes before a slot is ejected from the hash
    /// ring (`serve.router.ring.ejected`). Hysteresis: one blip never
    /// moves keys.
    pub eject_after: u32,
    /// Consecutive successful probes before an ejected slot is
    /// re-admitted (`serve.router.ring.readmitted`).
    pub readmit_after: u32,
    /// Catalog directory (the fleet-shared one) so the router can
    /// resolve `dataset:` references to content fingerprints for
    /// routing. `None` falls back to hashing the reference string.
    pub catalog_dir: Option<PathBuf>,
    /// Router-side metrics (`serve.router.*`).
    pub obs: Obs,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            vnodes_per_slot: 40,
            retry_backoff_ms: 100,
            extra_rounds: 1,
            connect_timeout_ms: 1_000,
            forward_timeout_ms: 120_000,
            head_timeout_ms: 10_000,
            peer_timeout_ms: 10_000,
            max_body_bytes: 16 * 1024 * 1024,
            probe_interval_ms: 500,
            eject_after: 3,
            readmit_after: 2,
            catalog_dir: None,
            obs: Obs::enabled(),
        }
    }
}

/// Where the router's replicas come from.
pub enum Fleet {
    /// A fixed address list (tests, externally managed workers).
    Static(Vec<SocketAddr>),
    /// A supervised fleet; the router reads live addresses every
    /// request, so respawns are picked up immediately.
    Supervised(Supervisor),
}

impl Fleet {
    fn addrs(&self) -> Vec<Option<SocketAddr>> {
        match self {
            Fleet::Static(addrs) => addrs.iter().copied().map(Some).collect(),
            Fleet::Supervised(s) => s.addrs(),
        }
    }
}

/// Per-slot probe verdict with hysteresis counters: the prober ejects a
/// slot from the hash ring after `eject_after` consecutive failures and
/// re-admits it after `readmit_after` consecutive successes, so one
/// dropped probe never migrates keys and a flapping peer settles instead
/// of oscillating.
#[derive(Clone)]
struct SlotHealth {
    /// Last probed `/readyz` state label (`down` when unreachable).
    state: String,
    /// Consecutive failed probes since the last success.
    fails: u32,
    /// Consecutive successful probes since the last failure.
    oks: u32,
    /// Whether the slot is currently ejected from the ring.
    ejected: bool,
}

impl SlotHealth {
    fn unknown() -> SlotHealth {
        SlotHealth {
            state: "unknown".into(),
            fails: 0,
            oks: 0,
            ejected: false,
        }
    }
}

struct RouterShared {
    cfg: RouterConfig,
    obs: Obs,
    fleet: Fleet,
    catalog: Option<Catalog>,
    stopping: AtomicBool,
    /// Set by `POST /admin/drain`; the serve binary polls it and shuts
    /// the whole fleet down (otherwise the supervisor would respawn the
    /// drained workers right back).
    drain_requested: AtomicBool,
    /// Per-slot probe verdicts; written by the prober, read by `/readyz`
    /// and by the routing loop (ejected slots take no traffic).
    probe_states: Mutex<Vec<SlotHealth>>,
}

impl RouterShared {
    /// Snapshot of the per-slot ejection flags. Slots the prober has not
    /// seen yet (fresh bind, growing fleet) default to in-ring.
    fn ejected_flags(&self) -> Vec<bool> {
        self.probe_states
            .lock()
            .expect("probe states lock")
            .iter()
            .map(|h| h.ejected)
            .collect()
    }
}

/// A running router; see the module docs for the topology.
pub struct Router {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Router {
    /// Binds the front listener and starts the accept and probe loops.
    pub fn bind(cfg: RouterConfig, fleet: Fleet) -> std::io::Result<Router> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let obs = cfg.obs.clone();
        for name in ROUTER_COUNTERS {
            obs.touch_counter(name);
        }
        for name in NET_COUNTERS {
            obs.touch_counter(name);
        }
        let slots = fleet.addrs().len();
        let catalog = cfg
            .catalog_dir
            .clone()
            .map(|dir| Catalog::open(dir, FaultPlan::none(), obs.clone()));
        let shared = Arc::new(RouterShared {
            obs,
            fleet,
            catalog,
            stopping: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            probe_states: Mutex::new(vec![SlotHealth::unknown(); slots]),
            cfg,
        });
        let mut threads = Vec::with_capacity(2);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ofd-router-accept".into())
                    .spawn(move || accept_loop(listener, shared))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ofd-router-probe".into())
                    .spawn(move || probe_loop(&shared))?,
            );
        }
        Ok(Router {
            shared,
            addr,
            threads,
        })
    }

    /// The bound front address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metrics handle.
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The fleet (e.g. to SIGKILL a worker from a chaos harness).
    pub fn fleet(&self) -> &Fleet {
        &self.shared.fleet
    }

    /// Whether a client asked the fleet to drain via `POST /admin/drain`.
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested.load(Ordering::SeqCst)
    }

    /// Stops the router threads and, for a supervised fleet, the
    /// supervisor and its workers.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Fleet::Supervised(s) = &self.shared.fleet {
            s.stop();
        }
    }
}

// -------------------------------------------------------------- hash ring

/// Murmur3-style finalizer: FNV over the short, near-identical vnode
/// labels clusters in the upper bits, and ring balance is entirely a
/// property of how uniformly the points spread.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Consistent-hash ring over worker *slot indices*: `vnodes` points per
/// slot, sorted by hash. Stable across respawns because addresses never
/// enter the hash.
fn build_ring(slots: usize, vnodes: usize) -> Vec<(u64, usize)> {
    let mut ring = Vec::with_capacity(slots * vnodes);
    for slot in 0..slots {
        for v in 0..vnodes {
            ring.push((
                mix(fnv1a64(format!("slot-{slot}-vnode-{v}").as_bytes())),
                slot,
            ));
        }
    }
    ring.sort_unstable();
    ring
}

/// Failover order for `key`: the owning slot first, then each remaining
/// distinct slot in ring-walk order.
fn candidates(ring: &[(u64, usize)], slots: usize, key: u64) -> Vec<usize> {
    let mut order = Vec::with_capacity(slots);
    if ring.is_empty() {
        return order;
    }
    // Keys get the same finalizer as ring points: FNV digests of small
    // inputs live in a narrow band and would otherwise walk the same arc.
    let key = mix(key);
    let start = ring.partition_point(|&(h, _)| h < key) % ring.len();
    for i in 0..ring.len() {
        let slot = ring[(start + i) % ring.len()].1;
        if !order.contains(&slot) {
            order.push(slot);
            if order.len() == slots {
                break;
            }
        }
    }
    order
}

/// The routing key for a request; see the module docs for the scheme.
fn route_key(req: &Request, body: Option<&Value>, shared: &RouterShared) -> u64 {
    if let Some(reference) = req.path.strip_prefix("/v1/datasets/") {
        // All versions of a dataset co-locate: hash the bare name.
        let name = reference.split('@').next().unwrap_or(reference);
        return fnv1a64(name.as_bytes());
    }
    if let Some(body) = body {
        if let Some(reference) = body.get("dataset").and_then(Value::as_str) {
            return match &shared.catalog {
                Some(catalog) => catalog.route_fingerprint(reference),
                None => fnv1a64(reference.as_bytes()),
            };
        }
        if let Some(csv) = body.get("csv").and_then(Value::as_str) {
            let onto = body.get("ontology").and_then(Value::as_str).unwrap_or("");
            return content_fingerprint(csv, onto);
        }
    }
    fnv1a64(req.path.as_bytes())
}

// ------------------------------------------------------------- forwarding

/// Sends `req` to `addr` and reads the complete reply (workers are
/// `Connection: close`, so EOF delimits it). Returns the status code
/// and the raw response bytes for verbatim relay.
///
/// Two transport checks make chaos survivable: the per-attempt I/O
/// timeout is clamped to the client's remaining deadline (a forward that
/// cannot finish in time fails fast instead of timing out long after the
/// caller hung up), and a reply whose body is shorter than its
/// `content-length` is an `UnexpectedEof` — a connection reset mid-body
/// must never be relayed as a success the client will parse.
fn forward(
    addr: SocketAddr,
    req: &Request,
    cfg: &RouterConfig,
    deadline: Option<Instant>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut timeout = Duration::from_millis(cfg.forward_timeout_ms);
    if let Some(deadline) = deadline {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::TimedOut, "request deadline passed")
            })?;
        timeout = timeout.min(remaining.max(Duration::from_millis(10)));
    }
    let mut stream = TcpStream::connect_timeout(
        &addr,
        Duration::from_millis(cfg.connect_timeout_ms).min(timeout),
    )?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{} {} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        req.method,
        req.path,
        req.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    let status = parse_status(&raw).ok_or_else(|| {
        std::io::Error::other("worker reply missing a status line")
    })?;
    if let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
        let head_text = String::from_utf8_lossy(&raw[..head_end]);
        if let Some(expected) = crate::peers::content_length(&head_text) {
            let got = raw.len() - head_end - 4;
            if got < expected {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("short worker reply: {got} of {expected} body bytes"),
                ));
            }
        }
    }
    Ok((status, raw))
}

fn parse_status(raw: &[u8]) -> Option<u16> {
    let line_end = raw.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&raw[..line_end]).ok()?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The JSON body of a raw reply, for the adoption check only.
fn reply_body(raw: &[u8]) -> Option<Value> {
    let sep = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    serde_json::from_str(std::str::from_utf8(&raw[sep + 4..]).ok()?).ok()
}

/// Whether a 200 reply reports a checkpoint resume — on a *retried*
/// request this is adoption: the replica restored a checkpoint some
/// other worker wrote.
fn reply_resumed(raw: &[u8]) -> bool {
    reply_body(raw).is_some_and(|v| {
        ["resumed_from_level", "resumed_from_phase", "resumed_from_seq"]
            .iter()
            .any(|f| v.get(f).is_some_and(|x| !x.is_null()))
    })
}

// ------------------------------------------------------------ front loops

fn accept_loop(listener: TcpListener, shared: Arc<RouterShared>) {
    while !shared.stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("ofd-router-conn".into())
                    .spawn(move || handle_connection(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Polls every worker's `/readyz` and records its `state` label; a slot
/// that refuses the connection is `down`. The verdicts drive ring
/// membership: `eject_after` consecutive failures ejects a slot
/// (`serve.router.ring.ejected`), `readmit_after` consecutive successes
/// re-admits it (`serve.router.ring.readmitted`). A probe counts as
/// failed when the peer is unreachable *or* reports a non-routable state
/// (`draining`, `down`) — a host that answers but refuses work sheds its
/// ring segment just like a dead one. The aggregated view is what the
/// router's own `/readyz` serves.
fn probe_loop(shared: &RouterShared) {
    while !shared.stopping.load(Ordering::SeqCst) {
        let addrs = shared.fleet.addrs();
        {
            let mut health = shared.probe_states.lock().expect("probe states lock");
            if health.len() != addrs.len() {
                health.resize(addrs.len(), SlotHealth::unknown());
            }
        }
        for (slot, addr) in addrs.into_iter().enumerate() {
            let state = addr.and_then(|addr| probe_one(addr, &shared.cfg));
            let routable = matches!(state.as_deref(), Some("ok") | Some("degraded"));
            let label = state.unwrap_or_else(|| "down".into());
            let mut health = shared.probe_states.lock().expect("probe states lock");
            let Some(h) = health.get_mut(slot) else {
                continue;
            };
            h.state = label;
            if routable {
                h.fails = 0;
                h.oks = h.oks.saturating_add(1);
                if h.ejected && h.oks >= shared.cfg.readmit_after {
                    h.ejected = false;
                    shared.obs.inc("serve.router.ring.readmitted");
                }
            } else {
                h.oks = 0;
                h.fails = h.fails.saturating_add(1);
                if !h.ejected && h.fails >= shared.cfg.eject_after {
                    h.ejected = true;
                    shared.obs.inc("serve.router.ring.ejected");
                }
            }
        }
        // Sleep in short slices so `shutdown()` never blocks on a parked
        // prober — chaos soaks stretch the interval to minutes to keep the
        // probe schedule deterministic, and a join against a monolithic
        // sleep would stall teardown for the full interval.
        let mut waited = 0u64;
        while waited < shared.cfg.probe_interval_ms && !shared.stopping.load(Ordering::SeqCst) {
            let step = (shared.cfg.probe_interval_ms - waited).min(50);
            std::thread::sleep(Duration::from_millis(step));
            waited += step;
        }
    }
}

fn probe_one(addr: SocketAddr, cfg: &RouterConfig) -> Option<String> {
    let req = Request {
        method: "GET".into(),
        path: "/readyz".into(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let mut probe_cfg = cfg.clone();
    probe_cfg.forward_timeout_ms = cfg.connect_timeout_ms.max(250);
    let (_, raw) = forward(addr, &req, &probe_cfg, None).ok()?;
    let state = reply_body(&raw)?
        .get("state")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    Some(state)
}

fn handle_connection(mut stream: TcpStream, shared: Arc<RouterShared>) {
    let cfg = &shared.cfg;
    let req = match read_request(
        &mut stream,
        cfg.max_body_bytes,
        Duration::from_millis(cfg.head_timeout_ms),
    ) {
        Ok(req) => req,
        // A client that vanished before or mid-request gets no reply —
        // there is nobody left to read it.
        Err(HttpError::Disconnected | HttpError::Truncated) => return,
        Err(e) => {
            let status = match e {
                HttpError::HeadTooLarge => 431,
                HttpError::BodyTooLarge => 413,
                _ => 400,
            };
            let _ = Response::json(status, &json!({ "error": format!("{e}") }))
                .write_to(&mut stream);
            return;
        }
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = Response::text(200, "ok\n").write_to(&mut stream);
        }
        ("GET", "/readyz") => {
            let addrs = shared.fleet.addrs();
            let states = shared.probe_states.lock().expect("probe states lock").clone();
            let workers: Vec<Value> = addrs
                .iter()
                .enumerate()
                .map(|(slot, addr)| {
                    let health = states.get(slot);
                    json!({
                        "addr": addr.map(|a| a.to_string()),
                        "state": health.map_or("unknown", |h| h.state.as_str()),
                        "ejected": health.is_some_and(|h| h.ejected),
                    })
                })
                .collect();
            let total = addrs.len();
            // A slot counts as live when it has an address and is still
            // in the ring; a partial ring is `degraded`, not down.
            let live = addrs
                .iter()
                .enumerate()
                .filter(|(slot, addr)| {
                    addr.is_some() && !states.get(*slot).is_some_and(|h| h.ejected)
                })
                .count();
            let ready = live > 0;
            let state = if live == 0 {
                "down"
            } else if live < total {
                "degraded"
            } else {
                "ok"
            };
            let body = json!({
                "ready": ready,
                "state": state,
                "role": "router",
                "workers": workers,
                "live_workers": live as u64,
                "total_workers": total as u64,
            });
            let _ = Response::json(if ready { 200 } else { 503 }, &body).write_to(&mut stream);
        }
        ("GET", "/metrics") => {
            let text = shared.obs.snapshot().to_json_string(true);
            let _ = Response::json_text(200, text).write_to(&mut stream);
        }
        ("POST", "/admin/drain") => {
            // Fan the drain out to every live worker; the router itself
            // holds no in-flight engine state to checkpoint.
            shared.drain_requested.store(true, Ordering::SeqCst);
            let mut drained = 0u64;
            for addr in shared.fleet.addrs().into_iter().flatten() {
                let drain = Request {
                    method: "POST".into(),
                    path: "/admin/drain".into(),
                    headers: Vec::new(),
                    body: Vec::new(),
                };
                if forward(addr, &drain, cfg, None).is_ok() {
                    drained += 1;
                }
            }
            let _ = Response::json(200, &json!({ "draining": true, "workers": drained }))
                .write_to(&mut stream);
        }
        ("PUT", path)
            if path
                .strip_prefix("/v1/datasets/")
                .is_some_and(|name| !name.is_empty() && !name.contains('/')) =>
        {
            // Catalog writes do not route to one owner: they replicate
            // write-through to a quorum of live peers so a dataset
            // version survives the loss of any minority of hosts.
            let name = req
                .path
                .strip_prefix("/v1/datasets/")
                .unwrap_or_default()
                .to_string();
            replicate_put(&req, &mut stream, &shared, &name);
        }
        _ => route(req, stream, &shared),
    }
}

/// Fans a catalog `PUT /v1/datasets/{name}` out to every live peer with
/// a pinned version number, succeeding at majority ack:
///
/// 1. pre-flight — fewer live peers than the quorum (majority of all
///    slots) means an immediate 503 with **zero writes**, so a partition
///    can never produce a torn version;
/// 2. pin — the new version is `max(live peers' newest) + 1`, carried in
///    the fan-out body so every replica stores the same number;
/// 3. fan out — workers store the pinned write **pending**
///    (`committed: false`) and apply it idempotently (re-registering
///    identical content at an existing version acks), each peer under a
///    small [`RetryPolicy`] budget so a transient reset or torn reply
///    does not cost the quorum a replica;
/// 4. commit — `acks ≥ quorum` runs a commit round flipping the pinned
///    version readable on every acker. A coordinator that dies between
///    quorum ack and commit leaves only *pending* files behind; readers
///    quorum-confirm those and either commit or delete them
///    (`serve.catalog.read_repaired`) — a torn version is never
///    readable;
/// 5. settle — quorum answers 200 (counting
///    `serve.catalog.replicated_partial` when some peer missed the
///    write); fewer acks rolls the pinned version back off every peer
///    that took it and answers 503.
fn replicate_put(req: &Request, stream: &mut TcpStream, shared: &RouterShared, name: &str) {
    let obs = &shared.obs;
    let body: Value = match std::str::from_utf8(&req.body)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            let _ = Response::json(400, &json!({ "error": format!("body is not JSON: {e}") }))
                .write_to(stream);
            return;
        }
    };
    let addrs = shared.fleet.addrs();
    let total = addrs.len();
    let quorum = total / 2 + 1;
    let ejected = shared.ejected_flags();
    let live: Vec<SocketAddr> = addrs
        .iter()
        .enumerate()
        .filter(|(slot, _)| !ejected.get(*slot).copied().unwrap_or(false))
        .filter_map(|(_, addr)| *addr)
        .collect();
    if live.len() < quorum {
        let _ = Response::json(
            503,
            &json!({
                "error": "catalog write quorum unavailable",
                "live": live.len() as u64,
                "total": total as u64,
                "quorum": quorum as u64,
            }),
        )
        .write_to(stream);
        return;
    }

    let timeouts = PeerTimeouts::from_ms(shared.cfg.peer_timeout_ms);
    let policy = RetryPolicy::new(3, shared.cfg.retry_backoff_ms.clamp(10, 250));
    let describe = format!("/v1/datasets/{name}");
    let mut newest = 0u64;
    for &addr in &live {
        if let Ok((200, reply)) = crate::peers::peer_json(addr, "GET", &describe, None, &timeouts)
        {
            newest = newest.max(reply.get("version").and_then(Value::as_u64).unwrap_or(0));
        }
    }
    let pinned = newest + 1;
    let mut put_body = body;
    if let Value::Object(fields) = &mut put_body {
        fields.retain(|(k, _)| k != "version");
        fields.push(("version".into(), json!(pinned)));
    }

    let mut acks: Vec<SocketAddr> = Vec::new();
    let mut first_ack: Option<Value> = None;
    let mut rejection: Option<(u16, Value)> = None;
    for &addr in &live {
        // Pinned writes are idempotent by content, so retrying a PUT
        // whose ack was torn off the wire is safe — the replica re-acks
        // without rewriting.
        match policy.run(
            |_| crate::peers::peer_json(addr, "PUT", &describe, Some(&put_body), &timeouts),
            |e| e.kind() == std::io::ErrorKind::ConnectionRefused,
        ) {
            Ok((200, reply)) => {
                if first_ack.is_none() {
                    first_ack = Some(reply);
                }
                acks.push(addr);
            }
            Ok((status, reply)) if (400..500).contains(&status) && rejection.is_none() => {
                // A validation rejection (bad CSV, bad name) is the
                // client's fault, not a replication failure — remember
                // it so the client sees the real reason, not a 503.
                rejection = Some((status, reply));
            }
            Ok(_) => {}
            Err(_) => {
                obs.inc(RETRIES_EXHAUSTED);
            }
        }
    }

    if acks.len() >= quorum {
        // Commit round: flip the pinned version readable on every acker.
        // Best-effort — the write is durable at quorum ack; a replica
        // the commit misses repairs itself at read time via quorum
        // confirmation.
        let commit = format!("/v1/datasets/{name}/{pinned}/commit");
        for &addr in &acks {
            let _ = policy.run(
                |_| crate::peers::peer_json(addr, "POST", &commit, None, &timeouts),
                |e| e.kind() == std::io::ErrorKind::ConnectionRefused,
            );
        }
        if acks.len() < total {
            obs.inc("serve.catalog.replicated_partial");
        }
        let mut reply = first_ack.unwrap_or_else(|| json!({ "name": name, "version": pinned }));
        if let Value::Object(fields) = &mut reply {
            fields.push(("replicas".into(), json!(acks.len() as u64)));
            fields.push(("quorum".into(), json!(quorum as u64)));
        }
        obs.inc("serve.router.routed");
        let _ = Response::json(200, &reply).write_to(stream);
        return;
    }

    // Quorum failed: delete the pinned version wherever it landed, so no
    // surviving peer ever serves a write the fleet did not commit.
    for &addr in &acks {
        let _ = crate::peers::peer_exchange(
            addr,
            "DELETE",
            &format!("/v1/datasets/{name}/{pinned}"),
            None,
            &timeouts,
        );
    }
    match rejection {
        Some((status, reply)) => {
            let _ = Response::json(status, &reply).write_to(stream);
        }
        None => {
            let _ = Response::json(
                503,
                &json!({
                    "error": "catalog write failed to reach quorum",
                    "acks": acks.len() as u64,
                    "quorum": quorum as u64,
                }),
            )
            .write_to(stream);
        }
    }
}

/// Routes one request: pick the ring owner, forward, fail over with
/// backoff to the next distinct replica on connect error, i/o error or
/// 5xx. Replies are relayed byte-for-byte.
fn route(req: Request, mut stream: TcpStream, shared: &Arc<RouterShared>) {
    let cfg = &shared.cfg;
    let obs = &shared.obs;

    let body: Option<Value> = if req.body.is_empty() {
        None
    } else {
        std::str::from_utf8(&req.body)
            .ok()
            .and_then(|text| serde_json::from_str(text).ok())
    };
    let key = route_key(&req, body.as_ref(), shared);

    let slots = shared.fleet.addrs().len();
    let ring = build_ring(slots, cfg.vnodes_per_slot.max(1));
    let order = candidates(&ring, slots, key);

    // The client's own timeout hint bounds the failover schedule: the
    // linear backoff must never sleep past the moment the caller stops
    // listening. Without the hint, backoff runs as configured.
    let deadline = body
        .as_ref()
        .and_then(|b| b.get("timeout_ms"))
        .and_then(Value::as_u64)
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let mut last_error = String::from("no worker replicas configured");
    // One RetryPolicy session spans the whole failover walk: it owns the
    // jittered backoff, the deadline clamp, and the fast-fail rule
    // (connection-refused means nothing is listening, so the next
    // replica is tried immediately — only timeouts, torn replies and
    // 5xx consume the backoff budget). The loop structure itself bounds
    // the attempt count, so the session's budget is effectively the
    // deadline.
    let policy = RetryPolicy::new(u32::MAX, cfg.retry_backoff_ms).deadline(deadline);
    let mut session = policy.session();
    // Sleep decided after the previous failure, applied only right
    // before another forward actually happens — skipped slots (ejected,
    // down) must not consume it.
    let mut pending_sleep: Option<Duration> = None;
    'failover: for round in 0..=cfg.extra_rounds {
        // Re-read ejection each round: the prober may eject the very
        // peer that just failed us mid-failover.
        let ejected = shared.ejected_flags();
        for &slot in &order {
            // An ejected slot takes no traffic and costs no sleep — the
            // prober already decided it is gone; failover walks straight
            // past it to the next replica on the ring.
            if ejected.get(slot).copied().unwrap_or(false) {
                last_error = format!("worker slot {slot} is ejected from the ring");
                continue;
            }
            // Re-read the slot's address every attempt: a respawn during
            // failover swaps the port under us, and that fresh worker is
            // exactly who we want next. A down slot costs no sleep — the
            // backoff belongs to real retries, not skipped ones.
            let Some(addr) = shared.fleet.addrs().get(slot).copied().flatten() else {
                last_error = format!("worker slot {slot} is down");
                continue;
            };
            if let Some(sleep) = pending_sleep.take() {
                obs.inc("serve.router.retried");
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
            match forward(addr, &req, cfg, deadline) {
                Ok((status, raw)) if status < 500 => {
                    obs.inc("serve.router.routed");
                    if session.failures() > 0 && status == 200 && reply_resumed(&raw) {
                        obs.inc("serve.router.adopted");
                    }
                    let _ = stream.write_all(&raw);
                    return;
                }
                Ok((status, _)) => {
                    last_error = format!("worker {addr} answered {status} (round {round})");
                    match session.after_failure(false) {
                        Some(sleep) => pending_sleep = Some(sleep),
                        None => break 'failover,
                    }
                }
                Err(e) => {
                    let fast_fail = e.kind() == std::io::ErrorKind::ConnectionRefused;
                    last_error = format!("worker {addr}: {e} (round {round})");
                    match session.after_failure(fast_fail) {
                        Some(sleep) => pending_sleep = Some(sleep),
                        None => break 'failover,
                    }
                }
            }
        }
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        last_error = format!(
            "request deadline passed after {} attempts; last: {last_error}",
            session.failures()
        );
    }
    obs.inc("serve.router.exhausted");
    obs.inc(RETRIES_EXHAUSTED);
    let _ = Response::json(
        502,
        &json!({ "error": "no replica could answer", "detail": last_error }),
    )
    .write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_covers_all_slots_and_is_deterministic() {
        let ring = build_ring(4, 40);
        assert_eq!(ring.len(), 160);
        assert_eq!(ring, build_ring(4, 40), "same inputs, same ring");
        for slot in 0..4 {
            assert!(ring.iter().any(|&(_, s)| s == slot), "slot {slot} present");
        }
    }

    #[test]
    fn candidates_visit_each_slot_exactly_once() {
        let ring = build_ring(3, 40);
        for key in [0u64, 1, u64::MAX, fnv1a64(b"clinical")] {
            let order = candidates(&ring, 3, key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "key {key}: order {order:?}");
        }
        assert!(candidates(&build_ring(0, 40), 0, 7).is_empty());
    }

    #[test]
    fn same_key_routes_to_the_same_owner() {
        let ring = build_ring(5, 40);
        let a = candidates(&ring, 5, fnv1a64(b"dataset-a"));
        let b = candidates(&ring, 5, fnv1a64(b"dataset-a"));
        assert_eq!(a, b);
    }

    #[test]
    fn keys_spread_across_slots() {
        // Not a uniformity proof — just that 40 vnodes/slot doesn't
        // degenerate to one owner for everything.
        let ring = build_ring(4, 40);
        let mut owners = std::collections::HashSet::new();
        for i in 0..64u64 {
            owners.insert(candidates(&ring, 4, fnv1a64(format!("key-{i}").as_bytes()))[0]);
        }
        assert!(owners.len() >= 3, "64 keys landed on {} slot(s)", owners.len());
    }

    #[test]
    fn status_line_parsing() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\n\r\n"), Some(200));
        assert_eq!(parse_status(b"HTTP/1.1 503 Service Unavailable\r\nx: y\r\n\r\n"), Some(503));
        assert_eq!(parse_status(b"garbage"), None);
    }

    #[test]
    fn resumed_detection_reads_the_reply_body() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\r\n{\"resumed_from_level\":3}";
        assert!(reply_resumed(raw));
        let raw = b"HTTP/1.1 200 OK\r\n\r\n{\"resumed_from_seq\":7}";
        assert!(reply_resumed(raw), "stream-session adoption is detected");
        let raw = b"HTTP/1.1 200 OK\r\n\r\n{\"resumed_from_level\":null,\"resumed_from_phase\":null,\"resumed_from_seq\":null}";
        assert!(!reply_resumed(raw));
    }

    #[test]
    fn router_with_zero_workers_answers_502_and_serves_metrics() {
        let obs = Obs::enabled();
        let router = Router::bind(
            RouterConfig {
                obs: obs.clone(),
                ..RouterConfig::default()
            },
            Fleet::Static(Vec::new()),
        )
        .expect("bind");
        let addr = router.addr();

        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"POST /v1/discover HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}")
            .expect("write");
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).expect("read");
        assert_eq!(parse_status(&reply), Some(502), "no replicas → bad gateway");

        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").expect("write");
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).expect("read");
        assert_eq!(parse_status(&reply), Some(200));
        let body = reply_body(&reply).expect("metrics json");
        let counters = body.get("counters").expect("counters");
        for name in ROUTER_COUNTERS {
            assert!(counters.get(name).is_some(), "{name} pinned at bind");
        }
        router.shutdown();
    }

    #[test]
    fn routes_dataset_references_and_inline_content_identically() {
        // The whole point of fingerprint routing: a job shipped inline
        // and the same job shipped by reference land on the same worker.
        let dir = std::env::temp_dir().join(format!(
            "ofd-router-key-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(dir.clone(), FaultPlan::none(), Obs::disabled());
        catalog.put("routed", "A,B\n1,2\n", "").expect("put");
        let shared = RouterShared {
            cfg: RouterConfig {
                catalog_dir: Some(dir.clone()),
                ..RouterConfig::default()
            },
            obs: Obs::disabled(),
            fleet: Fleet::Static(Vec::new()),
            catalog: Some(catalog),
            stopping: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            probe_states: Mutex::new(Vec::new()),
        };
        let post = |body: &Value| Request {
            method: "POST".into(),
            path: "/v1/discover".into(),
            headers: Vec::new(),
            body: serde_json::to_string(body).expect("body").into_bytes(),
        };
        let inline = json!({"csv": "A,B\n1,2\n"});
        let by_ref = json!({"dataset": "routed@1"});
        assert_eq!(
            route_key(&post(&inline), Some(&inline), &shared),
            route_key(&post(&by_ref), Some(&by_ref), &shared),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An address nothing listens on (bound, then immediately released).
    fn dead_addr() -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    }

    /// Runs `route` against a fleet and returns (status, elapsed).
    fn route_once(cfg: RouterConfig, fleet: Fleet, body: &Value) -> (Option<u16>, Duration) {
        let shared = Arc::new(RouterShared {
            cfg,
            obs: Obs::disabled(),
            fleet,
            catalog: None,
            stopping: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            probe_states: Mutex::new(Vec::new()),
        });
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let req = Request {
            method: "POST".into(),
            path: "/v1/discover".into(),
            headers: Vec::new(),
            body: serde_json::to_string(body).expect("body").into_bytes(),
        };
        let started = Instant::now();
        route(req, server_side, &shared);
        let elapsed = started.elapsed();
        let mut reply = Vec::new();
        client.read_to_end(&mut reply).expect("read");
        (parse_status(&reply), elapsed)
    }

    #[test]
    fn failover_backoff_is_clamped_to_the_request_deadline() {
        // A backoff schedule of minutes, but a client that only waits
        // 50 ms: the old loop would sleep the full backoff between every
        // failed attempt; the fix clamps each sleep to the remaining
        // deadline and answers 502 as soon as it has passed.
        let cfg = RouterConfig {
            retry_backoff_ms: 120_000,
            extra_rounds: 3,
            connect_timeout_ms: 200,
            obs: Obs::disabled(),
            ..RouterConfig::default()
        };
        let fleet = Fleet::Static(vec![dead_addr(), dead_addr()]);
        let (status, elapsed) = route_once(cfg, fleet, &json!({"timeout_ms": 50u64}));
        assert_eq!(status, Some(502), "dead fleet → bad gateway");
        assert!(
            elapsed < Duration::from_secs(10),
            "deadline-clamped failover must not sleep the configured {:?}-scale backoff (took {elapsed:?})",
            Duration::from_millis(120_000),
        );
    }

    #[test]
    fn single_attempt_failover_never_sleeps() {
        // One replica, no extra rounds: there is no retry to back off
        // for, so a pathological backoff setting must cost nothing.
        let cfg = RouterConfig {
            retry_backoff_ms: 600_000,
            extra_rounds: 0,
            connect_timeout_ms: 200,
            obs: Obs::disabled(),
            ..RouterConfig::default()
        };
        let fleet = Fleet::Static(vec![dead_addr()]);
        let (status, elapsed) = route_once(cfg, fleet, &json!({"csv": "A\n1\n"}));
        assert_eq!(status, Some(502));
        assert!(
            elapsed < Duration::from_secs(5),
            "no-retry path must answer without backoff (took {elapsed:?})"
        );
    }

    #[test]
    fn connection_refused_fails_over_without_backoff() {
        // Three dead replicas and a minutes-scale backoff, but no client
        // deadline: connection-refused means nothing is listening, so
        // failover must jump straight to the next replica instead of
        // sleeping toward an address that cannot recover mid-request.
        let cfg = RouterConfig {
            retry_backoff_ms: 600_000,
            extra_rounds: 2,
            connect_timeout_ms: 200,
            obs: Obs::disabled(),
            ..RouterConfig::default()
        };
        let fleet = Fleet::Static(vec![dead_addr(), dead_addr(), dead_addr()]);
        let (status, elapsed) = route_once(cfg, fleet, &json!({"csv": "A\n1\n"}));
        assert_eq!(status, Some(502));
        assert!(
            elapsed < Duration::from_secs(5),
            "refused connections must not consume the backoff budget (took {elapsed:?})"
        );
    }

    /// A fake worker whose `/readyz` health is scripted: while
    /// `fail_budget > 0` every request consumes one unit and answers
    /// 503 `draining`; otherwise 200 `ok`. Flipping health through the
    /// budget (instead of rebinding a listener) keeps the port stable
    /// across the flap, which is exactly the case hysteresis exists for.
    fn scripted_worker(
        fail_budget: Arc<std::sync::atomic::AtomicU32>,
    ) -> (SocketAddr, Arc<AtomicBool>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                        let mut buf = [0u8; 1024];
                        let _ = s.read(&mut buf);
                        let failing = fail_budget
                            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                                b.checked_sub(1)
                            })
                            .is_ok();
                        let body = if failing {
                            r#"{"state":"draining"}"#
                        } else {
                            r#"{"state":"ok"}"#
                        };
                        let status = if failing { 503 } else { 200 };
                        let reply = format!(
                            "HTTP/1.1 {status} X\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                            body.len()
                        );
                        let _ = s.write_all(reply.as_bytes());
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    fn http_get(addr: SocketAddr, path: &str) -> (Option<u16>, Option<Value>) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
            .expect("write");
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).expect("read");
        (parse_status(&reply), reply_body(&reply))
    }

    fn counter(obs: &Obs, name: &str) -> u64 {
        obs.snapshot().counter(name).unwrap_or(0)
    }

    fn wait_until(deadline: Duration, what: &str, mut done: impl FnMut() -> bool) {
        let end = Instant::now() + deadline;
        while !done() {
            assert!(Instant::now() < end, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn flapping_peer_ejects_and_readmits_with_hysteresis() {
        use std::sync::atomic::AtomicU32;
        let steady = Arc::new(AtomicU32::new(0));
        let flappy = Arc::new(AtomicU32::new(0));
        let (addr_a, stop_a) = scripted_worker(steady.clone());
        let (addr_b, stop_b) = scripted_worker(flappy.clone());
        let obs = Obs::enabled();
        let router = Router::bind(
            RouterConfig {
                probe_interval_ms: 20,
                eject_after: 3,
                readmit_after: 2,
                connect_timeout_ms: 200,
                obs: obs.clone(),
                ..RouterConfig::default()
            },
            Fleet::Static(vec![addr_a, addr_b]),
        )
        .expect("bind");

        // A single failed probe is absorbed: the budget feeds exactly one
        // 503 to the prober, well under eject_after = 3.
        flappy.store(1, Ordering::SeqCst);
        wait_until(Duration::from_secs(10), "the blip to be probed away", || {
            flappy.load(Ordering::SeqCst) == 0
        });
        std::thread::sleep(Duration::from_millis(200)); // ≥ several probe cycles
        assert_eq!(counter(&obs, "serve.router.ring.ejected"), 0, "one blip must not eject");

        // A sustained failure ejects exactly once, and the router reports
        // a degraded (not down) fleet while the ring is partial.
        flappy.store(u32::MAX, Ordering::SeqCst);
        wait_until(Duration::from_secs(10), "ejection", || {
            counter(&obs, "serve.router.ring.ejected") == 1
        });
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(
            counter(&obs, "serve.router.ring.ejected"),
            1,
            "continued failures must not re-count an already ejected slot"
        );
        let (status, body) = http_get(router.addr(), "/readyz");
        assert_eq!(status, Some(200), "one live worker keeps the router ready");
        let body = body.expect("readyz body");
        assert_eq!(body.get("state").and_then(Value::as_str), Some("degraded"));
        assert_eq!(body.get("live_workers").and_then(Value::as_u64), Some(1));
        let workers = body.get("workers").and_then(Value::as_array).expect("workers");
        assert_eq!(workers[1].get("ejected").and_then(Value::as_bool), Some(true));

        // Recovery readmits after readmit_after consecutive healthy probes.
        flappy.store(0, Ordering::SeqCst);
        wait_until(Duration::from_secs(10), "readmission", || {
            counter(&obs, "serve.router.ring.readmitted") == 1
        });
        let (status, body) = http_get(router.addr(), "/readyz");
        assert_eq!(status, Some(200));
        let body = body.expect("readyz body");
        assert_eq!(body.get("state").and_then(Value::as_str), Some("ok"));
        assert_eq!(body.get("live_workers").and_then(Value::as_u64), Some(2));

        // A second flap cycles the same hysteresis again.
        flappy.store(u32::MAX, Ordering::SeqCst);
        wait_until(Duration::from_secs(10), "second ejection", || {
            counter(&obs, "serve.router.ring.ejected") == 2
        });

        router.shutdown();
        stop_a.store(true, Ordering::SeqCst);
        stop_b.store(true, Ordering::SeqCst);
    }

    /// Three real workers with *disjoint* catalog roots behind a static
    /// router — the multi-host shape, shrunk onto localhost.
    fn quorum_fleet() -> (Vec<crate::Server>, Router, Obs, std::path::PathBuf) {
        let tmp = std::env::temp_dir().join(format!(
            "ofd-router-quorum-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0)
        ));
        let _ = std::fs::remove_dir_all(&tmp);
        let mut servers = Vec::new();
        for who in ["a", "b", "c"] {
            let cfg = crate::ServeConfig {
                checkpoint_dir: Some(tmp.join(who)),
                ..crate::ServeConfig::default()
            };
            servers.push(crate::Server::bind(cfg).expect("worker bind"));
        }
        let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.addr()).collect();
        let obs = Obs::enabled();
        let router = Router::bind(
            RouterConfig {
                connect_timeout_ms: 500,
                obs: obs.clone(),
                ..RouterConfig::default()
            },
            Fleet::Static(addrs),
        )
        .expect("router bind");
        (servers, router, obs, tmp)
    }

    #[test]
    fn quorum_put_survives_one_dead_peer_and_counts_partial_replication() {
        let (mut servers, router, obs, tmp) = quorum_fleet();
        let body = json!({"csv": "A,B\n1,2\n", "ontology": ""});

        // Full fleet: the write lands everywhere.
        let (status, reply) = crate::peers::peer_json(router.addr(), "PUT", "/v1/datasets/q", Some(&body), &PeerTimeouts::default())
            .expect("router put");
        assert_eq!(status, 200, "full-fleet put: {reply:?}");
        assert_eq!(reply.get("version").and_then(Value::as_u64), Some(1));
        assert_eq!(reply.get("replicas").and_then(Value::as_u64), Some(3));
        assert_eq!(counter(&obs, "serve.catalog.replicated_partial"), 0);

        // Kill C; two of three still make quorum, partial is counted.
        servers.pop().expect("worker c").shutdown(Duration::from_millis(200));
        let body2 = json!({"csv": "A,B\n1,3\n", "ontology": ""});
        let (status, reply) = crate::peers::peer_json(router.addr(), "PUT", "/v1/datasets/q", Some(&body2), &PeerTimeouts::default())
            .expect("router put");
        assert_eq!(status, 200, "majority put: {reply:?}");
        assert_eq!(reply.get("version").and_then(Value::as_u64), Some(2));
        assert_eq!(reply.get("replicas").and_then(Value::as_u64), Some(2));
        assert_eq!(counter(&obs, "serve.catalog.replicated_partial"), 1);

        // Every surviving peer serves the committed version directly.
        for s in &servers {
            let (status, reply) =
                crate::peers::peer_json(s.addr(), "GET", "/v1/datasets/q", None, &PeerTimeouts::default())
                    .expect("describe");
            assert_eq!(status, 200);
            assert_eq!(
                reply.get("version").and_then(Value::as_u64),
                Some(2),
                "survivor {} must hold the committed write",
                s.addr()
            );
        }

        router.shutdown();
        for s in servers {
            s.shutdown(Duration::from_millis(200));
        }
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn quorum_put_with_a_dead_majority_rolls_back_and_answers_503() {
        let (mut servers, router, obs, tmp) = quorum_fleet();
        let body = json!({"csv": "A,B\n1,2\n", "ontology": ""});
        let (status, _) = crate::peers::peer_json(router.addr(), "PUT", "/v1/datasets/q", Some(&body), &PeerTimeouts::default())
            .expect("router put");
        assert_eq!(status, 200);

        // Kill B and C: one ack cannot make a quorum of two.
        servers.pop().expect("worker c").shutdown(Duration::from_millis(200));
        servers.pop().expect("worker b").shutdown(Duration::from_millis(200));
        let body2 = json!({"csv": "A,B\n9,9\n", "ontology": ""});
        let (status, reply) = crate::peers::peer_json(router.addr(), "PUT", "/v1/datasets/q", Some(&body2), &PeerTimeouts::default())
            .expect("router put");
        assert_eq!(status, 503, "minority put must fail: {reply:?}");
        assert_eq!(counter(&obs, "serve.catalog.replicated_partial"), 0);

        // No torn version: the survivor still serves version 1 and has no
        // trace of the aborted version 2.
        let survivor = servers[0].addr();
        let (status, reply) =
            crate::peers::peer_json(survivor, "GET", "/v1/datasets/q", None, &PeerTimeouts::default())
                .expect("describe");
        assert_eq!(status, 200);
        assert_eq!(reply.get("version").and_then(Value::as_u64), Some(1));
        let (status, _) =
            crate::peers::peer_json(survivor, "GET", "/v1/datasets/q@2", None, &PeerTimeouts::default())
                .expect("resolve");
        assert_ne!(status, 200, "aborted version must be rolled back");

        router.shutdown();
        for s in servers {
            s.shutdown(Duration::from_millis(200));
        }
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
