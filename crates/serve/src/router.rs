//! The shard router: one front process, N worker replicas.
//!
//! ```text
//!                       ┌────────────┐  consistent hash   ┌──────────┐
//!   clients ──────────▶ │   router   │ ─────────────────▶ │ worker 0 │──┐
//!            POST /v1/* │ (no engine │   retry next       ├──────────┤  │ shared
//!            PUT  /v1/  │   inside)  │   replica on       │ worker 1 │──┤ checkpoint
//!            datasets/* │            │   connect/5xx      ├──────────┤  │ + catalog
//!                       └─────┬──────┘                    │ worker N │──┘ root
//!                             │ supervises (respawn,      └──────────┘
//!                             ▼  restart-storm breaker)
//!                       [Supervisor]
//! ```
//!
//! Routing is by **dataset content fingerprint**: inline bodies hash
//! their CSV/ontology text, `"dataset": "name@version"` references
//! resolve through the shared catalog to the same digest, and catalog
//! API calls hash the dataset name — so a dataset's jobs, versions and
//! checkpoint traffic land on one worker in the steady state, keeping
//! its interned parse and partition caches hot. The hash ring hashes
//! *slot indices*, not addresses, so a respawned worker (fresh port)
//! inherits its predecessor's ring segment.
//!
//! Failover is what makes the fleet resilient rather than just wide:
//! a connect failure, i/o error mid-reply, or 5xx moves the request to
//! the next distinct replica on the ring after a backoff
//! (`serve.router.retried`). Because every worker shares one checkpoint
//! root and job directories are keyed by request content (never worker
//! identity), the replica that inherits a SIGKILLed worker's request
//! **adopts its checkpoint** and resumes mid-level — observed as a 200
//! with a non-null `resumed_from_*` field on a retried request, counted
//! as `serve.router.adopted`.
//!
//! The router never parses engine results; it relays worker reply bytes
//! verbatim, which is why byte-identical-response assertions hold
//! through it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ofd_core::{fnv1a64, FaultPlan, Obs};
use serde_json::{json, Value};

use crate::catalog::{content_fingerprint, Catalog};
use crate::http::{read_request, HttpError, Request, Response};
use crate::supervisor::Supervisor;

/// The `serve.router.*` counters pinned by the metrics schema test;
/// touched at bind so they are present (zero) in every router
/// `/metrics` document.
pub const ROUTER_COUNTERS: [&str; 4] = [
    "serve.router.routed",
    "serve.router.retried",
    "serve.router.respawned",
    "serve.router.adopted",
];

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the router plays
    /// by the same OS-assigned-port rule as its workers).
    pub addr: String,
    /// Virtual nodes per worker slot on the hash ring; more vnodes
    /// smooth the key distribution across slots.
    pub vnodes_per_slot: usize,
    /// Base backoff between failover attempts (grows linearly).
    pub retry_backoff_ms: u64,
    /// Extra failover passes over the replica list after the first
    /// (covers the window where every replica is mid-respawn).
    pub extra_rounds: usize,
    /// TCP connect timeout per forward attempt.
    pub connect_timeout_ms: u64,
    /// Read/write timeout on a forwarded request (must cover the worker
    /// job budget, or the router gives up on jobs that would finish).
    pub forward_timeout_ms: u64,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Worker `/readyz` probe cadence.
    pub probe_interval_ms: u64,
    /// Catalog directory (the fleet-shared one) so the router can
    /// resolve `dataset:` references to content fingerprints for
    /// routing. `None` falls back to hashing the reference string.
    pub catalog_dir: Option<PathBuf>,
    /// Router-side metrics (`serve.router.*`).
    pub obs: Obs,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            vnodes_per_slot: 40,
            retry_backoff_ms: 100,
            extra_rounds: 1,
            connect_timeout_ms: 1_000,
            forward_timeout_ms: 120_000,
            max_body_bytes: 16 * 1024 * 1024,
            probe_interval_ms: 500,
            catalog_dir: None,
            obs: Obs::enabled(),
        }
    }
}

/// Where the router's replicas come from.
pub enum Fleet {
    /// A fixed address list (tests, externally managed workers).
    Static(Vec<SocketAddr>),
    /// A supervised fleet; the router reads live addresses every
    /// request, so respawns are picked up immediately.
    Supervised(Supervisor),
}

impl Fleet {
    fn addrs(&self) -> Vec<Option<SocketAddr>> {
        match self {
            Fleet::Static(addrs) => addrs.iter().copied().map(Some).collect(),
            Fleet::Supervised(s) => s.addrs(),
        }
    }
}

struct RouterShared {
    cfg: RouterConfig,
    obs: Obs,
    fleet: Fleet,
    catalog: Option<Catalog>,
    stopping: AtomicBool,
    /// Set by `POST /admin/drain`; the serve binary polls it and shuts
    /// the whole fleet down (otherwise the supervisor would respawn the
    /// drained workers right back).
    drain_requested: AtomicBool,
    /// Last probed `/readyz` state label per slot (`down` when
    /// unreachable); written by the prober, read by `/readyz`.
    probe_states: Mutex<Vec<String>>,
}

/// A running router; see the module docs for the topology.
pub struct Router {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Router {
    /// Binds the front listener and starts the accept and probe loops.
    pub fn bind(cfg: RouterConfig, fleet: Fleet) -> std::io::Result<Router> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let obs = cfg.obs.clone();
        for name in ROUTER_COUNTERS {
            obs.touch_counter(name);
        }
        let slots = fleet.addrs().len();
        let catalog = cfg
            .catalog_dir
            .clone()
            .map(|dir| Catalog::open(dir, FaultPlan::none(), obs.clone()));
        let shared = Arc::new(RouterShared {
            obs,
            fleet,
            catalog,
            stopping: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            probe_states: Mutex::new(vec!["unknown".into(); slots]),
            cfg,
        });
        let mut threads = Vec::with_capacity(2);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ofd-router-accept".into())
                    .spawn(move || accept_loop(listener, shared))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ofd-router-probe".into())
                    .spawn(move || probe_loop(&shared))?,
            );
        }
        Ok(Router {
            shared,
            addr,
            threads,
        })
    }

    /// The bound front address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metrics handle.
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The fleet (e.g. to SIGKILL a worker from a chaos harness).
    pub fn fleet(&self) -> &Fleet {
        &self.shared.fleet
    }

    /// Whether a client asked the fleet to drain via `POST /admin/drain`.
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested.load(Ordering::SeqCst)
    }

    /// Stops the router threads and, for a supervised fleet, the
    /// supervisor and its workers.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Fleet::Supervised(s) = &self.shared.fleet {
            s.stop();
        }
    }
}

// -------------------------------------------------------------- hash ring

/// Murmur3-style finalizer: FNV over the short, near-identical vnode
/// labels clusters in the upper bits, and ring balance is entirely a
/// property of how uniformly the points spread.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Consistent-hash ring over worker *slot indices*: `vnodes` points per
/// slot, sorted by hash. Stable across respawns because addresses never
/// enter the hash.
fn build_ring(slots: usize, vnodes: usize) -> Vec<(u64, usize)> {
    let mut ring = Vec::with_capacity(slots * vnodes);
    for slot in 0..slots {
        for v in 0..vnodes {
            ring.push((
                mix(fnv1a64(format!("slot-{slot}-vnode-{v}").as_bytes())),
                slot,
            ));
        }
    }
    ring.sort_unstable();
    ring
}

/// Failover order for `key`: the owning slot first, then each remaining
/// distinct slot in ring-walk order.
fn candidates(ring: &[(u64, usize)], slots: usize, key: u64) -> Vec<usize> {
    let mut order = Vec::with_capacity(slots);
    if ring.is_empty() {
        return order;
    }
    // Keys get the same finalizer as ring points: FNV digests of small
    // inputs live in a narrow band and would otherwise walk the same arc.
    let key = mix(key);
    let start = ring.partition_point(|&(h, _)| h < key) % ring.len();
    for i in 0..ring.len() {
        let slot = ring[(start + i) % ring.len()].1;
        if !order.contains(&slot) {
            order.push(slot);
            if order.len() == slots {
                break;
            }
        }
    }
    order
}

/// The routing key for a request; see the module docs for the scheme.
fn route_key(req: &Request, body: Option<&Value>, shared: &RouterShared) -> u64 {
    if let Some(reference) = req.path.strip_prefix("/v1/datasets/") {
        // All versions of a dataset co-locate: hash the bare name.
        let name = reference.split('@').next().unwrap_or(reference);
        return fnv1a64(name.as_bytes());
    }
    if let Some(body) = body {
        if let Some(reference) = body.get("dataset").and_then(Value::as_str) {
            return match &shared.catalog {
                Some(catalog) => catalog.route_fingerprint(reference),
                None => fnv1a64(reference.as_bytes()),
            };
        }
        if let Some(csv) = body.get("csv").and_then(Value::as_str) {
            let onto = body.get("ontology").and_then(Value::as_str).unwrap_or("");
            return content_fingerprint(csv, onto);
        }
    }
    fnv1a64(req.path.as_bytes())
}

// ------------------------------------------------------------- forwarding

/// Sends `req` to `addr` and reads the complete reply (workers are
/// `Connection: close`, so EOF delimits it). Returns the status code
/// and the raw response bytes for verbatim relay.
fn forward(
    addr: SocketAddr,
    req: &Request,
    cfg: &RouterConfig,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect_timeout(
        &addr,
        Duration::from_millis(cfg.connect_timeout_ms),
    )?;
    let timeout = Some(Duration::from_millis(cfg.forward_timeout_ms));
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let head = format!(
        "{} {} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        req.method,
        req.path,
        req.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    let status = parse_status(&raw).ok_or_else(|| {
        std::io::Error::other("worker reply missing a status line")
    })?;
    Ok((status, raw))
}

fn parse_status(raw: &[u8]) -> Option<u16> {
    let line_end = raw.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&raw[..line_end]).ok()?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The JSON body of a raw reply, for the adoption check only.
fn reply_body(raw: &[u8]) -> Option<Value> {
    let sep = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    serde_json::from_str(std::str::from_utf8(&raw[sep + 4..]).ok()?).ok()
}

/// Whether a 200 reply reports a checkpoint resume — on a *retried*
/// request this is adoption: the replica restored a checkpoint some
/// other worker wrote.
fn reply_resumed(raw: &[u8]) -> bool {
    reply_body(raw).is_some_and(|v| {
        ["resumed_from_level", "resumed_from_phase", "resumed_from_seq"]
            .iter()
            .any(|f| v.get(f).is_some_and(|x| !x.is_null()))
    })
}

// ------------------------------------------------------------ front loops

fn accept_loop(listener: TcpListener, shared: Arc<RouterShared>) {
    while !shared.stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("ofd-router-conn".into())
                    .spawn(move || handle_connection(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Polls every worker's `/readyz` and records its `state` label; a slot
/// that refuses the connection is `down`. The aggregated view is what
/// the router's own `/readyz` serves.
fn probe_loop(shared: &RouterShared) {
    while !shared.stopping.load(Ordering::SeqCst) {
        let addrs = shared.fleet.addrs();
        let mut states = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let state = match addr {
                None => "down".to_string(),
                Some(addr) => probe_one(addr, &shared.cfg).unwrap_or_else(|| "down".into()),
            };
            states.push(state);
        }
        *shared.probe_states.lock().expect("probe states lock") = states;
        std::thread::sleep(Duration::from_millis(shared.cfg.probe_interval_ms));
    }
}

fn probe_one(addr: SocketAddr, cfg: &RouterConfig) -> Option<String> {
    let req = Request {
        method: "GET".into(),
        path: "/readyz".into(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let mut probe_cfg = cfg.clone();
    probe_cfg.forward_timeout_ms = cfg.connect_timeout_ms.max(250);
    let (_, raw) = forward(addr, &req, &probe_cfg).ok()?;
    let state = reply_body(&raw)?
        .get("state")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    Some(state)
}

fn handle_connection(mut stream: TcpStream, shared: Arc<RouterShared>) {
    let cfg = &shared.cfg;
    let req = match read_request(&mut stream, cfg.max_body_bytes, Duration::from_secs(10)) {
        Ok(req) => req,
        Err(HttpError::Disconnected) => return,
        Err(e) => {
            let status = match e {
                HttpError::HeadTooLarge => 431,
                HttpError::BodyTooLarge => 413,
                _ => 400,
            };
            let _ = Response::json(status, &json!({ "error": format!("{e}") }))
                .write_to(&mut stream);
            return;
        }
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = Response::text(200, "ok\n").write_to(&mut stream);
        }
        ("GET", "/readyz") => {
            let addrs = shared.fleet.addrs();
            let states = shared.probe_states.lock().expect("probe states lock").clone();
            let workers: Vec<Value> = addrs
                .iter()
                .zip(states.iter())
                .map(|(addr, state)| {
                    json!({
                        "addr": addr.map(|a| a.to_string()),
                        "state": state,
                    })
                })
                .collect();
            let live = addrs.iter().filter(|a| a.is_some()).count();
            let ready = live > 0;
            let body = json!({
                "ready": ready,
                "role": "router",
                "workers": workers,
                "live_workers": live as u64,
            });
            let _ = Response::json(if ready { 200 } else { 503 }, &body).write_to(&mut stream);
        }
        ("GET", "/metrics") => {
            let text = shared.obs.snapshot().to_json_string(true);
            let _ = Response::json_text(200, text).write_to(&mut stream);
        }
        ("POST", "/admin/drain") => {
            // Fan the drain out to every live worker; the router itself
            // holds no in-flight engine state to checkpoint.
            shared.drain_requested.store(true, Ordering::SeqCst);
            let mut drained = 0u64;
            for addr in shared.fleet.addrs().into_iter().flatten() {
                let drain = Request {
                    method: "POST".into(),
                    path: "/admin/drain".into(),
                    headers: Vec::new(),
                    body: Vec::new(),
                };
                if forward(addr, &drain, cfg).is_ok() {
                    drained += 1;
                }
            }
            let _ = Response::json(200, &json!({ "draining": true, "workers": drained }))
                .write_to(&mut stream);
        }
        _ => route(req, stream, &shared),
    }
}

/// Routes one request: pick the ring owner, forward, fail over with
/// backoff to the next distinct replica on connect error, i/o error or
/// 5xx. Replies are relayed byte-for-byte.
fn route(req: Request, mut stream: TcpStream, shared: &Arc<RouterShared>) {
    let cfg = &shared.cfg;
    let obs = &shared.obs;

    let body: Option<Value> = if req.body.is_empty() {
        None
    } else {
        std::str::from_utf8(&req.body)
            .ok()
            .and_then(|text| serde_json::from_str(text).ok())
    };
    let key = route_key(&req, body.as_ref(), shared);

    let slots = shared.fleet.addrs().len();
    let ring = build_ring(slots, cfg.vnodes_per_slot.max(1));
    let order = candidates(&ring, slots, key);

    // The client's own timeout hint bounds the failover schedule: the
    // linear backoff must never sleep past the moment the caller stops
    // listening. Without the hint, backoff runs as configured.
    let deadline = body
        .as_ref()
        .and_then(|b| b.get("timeout_ms"))
        .and_then(Value::as_u64)
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let mut attempts = 0usize;
    let mut last_error = String::from("no worker replicas configured");
    'failover: for round in 0..=cfg.extra_rounds {
        for &slot in &order {
            // Re-read the slot's address every attempt: a respawn during
            // failover swaps the port under us, and that fresh worker is
            // exactly who we want next. A down slot costs no sleep — the
            // backoff belongs to real retries, not skipped ones.
            let Some(addr) = shared.fleet.addrs().get(slot).copied().flatten() else {
                last_error = format!("worker slot {slot} is down");
                continue;
            };
            if attempts > 0 {
                // Sleep only here, where another forward definitely
                // follows; clamp to the remaining deadline and give up
                // once it has passed — answering 502 immediately beats
                // sleeping toward a reply nobody reads.
                let mut backoff =
                    Duration::from_millis(cfg.retry_backoff_ms.saturating_mul(attempts as u64));
                if let Some(deadline) = deadline {
                    match deadline.checked_duration_since(Instant::now()) {
                        Some(remaining) => backoff = backoff.min(remaining),
                        None => {
                            last_error = format!(
                                "request deadline passed after {attempts} attempts; last: {last_error}"
                            );
                            break 'failover;
                        }
                    }
                }
                obs.inc("serve.router.retried");
                std::thread::sleep(backoff);
            }
            attempts += 1;
            match forward(addr, &req, cfg) {
                Ok((status, raw)) if status < 500 => {
                    obs.inc("serve.router.routed");
                    if attempts > 1 && status == 200 && reply_resumed(&raw) {
                        obs.inc("serve.router.adopted");
                    }
                    let _ = stream.write_all(&raw);
                    return;
                }
                Ok((status, _)) => {
                    last_error = format!("worker {addr} answered {status} (round {round})");
                }
                Err(e) => {
                    last_error = format!("worker {addr}: {e} (round {round})");
                }
            }
        }
    }
    obs.inc("serve.router.exhausted");
    let _ = Response::json(
        502,
        &json!({ "error": "no replica could answer", "detail": last_error }),
    )
    .write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_covers_all_slots_and_is_deterministic() {
        let ring = build_ring(4, 40);
        assert_eq!(ring.len(), 160);
        assert_eq!(ring, build_ring(4, 40), "same inputs, same ring");
        for slot in 0..4 {
            assert!(ring.iter().any(|&(_, s)| s == slot), "slot {slot} present");
        }
    }

    #[test]
    fn candidates_visit_each_slot_exactly_once() {
        let ring = build_ring(3, 40);
        for key in [0u64, 1, u64::MAX, fnv1a64(b"clinical")] {
            let order = candidates(&ring, 3, key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "key {key}: order {order:?}");
        }
        assert!(candidates(&build_ring(0, 40), 0, 7).is_empty());
    }

    #[test]
    fn same_key_routes_to_the_same_owner() {
        let ring = build_ring(5, 40);
        let a = candidates(&ring, 5, fnv1a64(b"dataset-a"));
        let b = candidates(&ring, 5, fnv1a64(b"dataset-a"));
        assert_eq!(a, b);
    }

    #[test]
    fn keys_spread_across_slots() {
        // Not a uniformity proof — just that 40 vnodes/slot doesn't
        // degenerate to one owner for everything.
        let ring = build_ring(4, 40);
        let mut owners = std::collections::HashSet::new();
        for i in 0..64u64 {
            owners.insert(candidates(&ring, 4, fnv1a64(format!("key-{i}").as_bytes()))[0]);
        }
        assert!(owners.len() >= 3, "64 keys landed on {} slot(s)", owners.len());
    }

    #[test]
    fn status_line_parsing() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\n\r\n"), Some(200));
        assert_eq!(parse_status(b"HTTP/1.1 503 Service Unavailable\r\nx: y\r\n\r\n"), Some(503));
        assert_eq!(parse_status(b"garbage"), None);
    }

    #[test]
    fn resumed_detection_reads_the_reply_body() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\r\n{\"resumed_from_level\":3}";
        assert!(reply_resumed(raw));
        let raw = b"HTTP/1.1 200 OK\r\n\r\n{\"resumed_from_seq\":7}";
        assert!(reply_resumed(raw), "stream-session adoption is detected");
        let raw = b"HTTP/1.1 200 OK\r\n\r\n{\"resumed_from_level\":null,\"resumed_from_phase\":null,\"resumed_from_seq\":null}";
        assert!(!reply_resumed(raw));
    }

    #[test]
    fn router_with_zero_workers_answers_502_and_serves_metrics() {
        let obs = Obs::enabled();
        let router = Router::bind(
            RouterConfig {
                obs: obs.clone(),
                ..RouterConfig::default()
            },
            Fleet::Static(Vec::new()),
        )
        .expect("bind");
        let addr = router.addr();

        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"POST /v1/discover HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}")
            .expect("write");
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).expect("read");
        assert_eq!(parse_status(&reply), Some(502), "no replicas → bad gateway");

        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").expect("write");
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).expect("read");
        assert_eq!(parse_status(&reply), Some(200));
        let body = reply_body(&reply).expect("metrics json");
        let counters = body.get("counters").expect("counters");
        for name in ROUTER_COUNTERS {
            assert!(counters.get(name).is_some(), "{name} pinned at bind");
        }
        router.shutdown();
    }

    #[test]
    fn routes_dataset_references_and_inline_content_identically() {
        // The whole point of fingerprint routing: a job shipped inline
        // and the same job shipped by reference land on the same worker.
        let dir = std::env::temp_dir().join(format!(
            "ofd-router-key-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(dir.clone(), FaultPlan::none(), Obs::disabled());
        catalog.put("routed", "A,B\n1,2\n", "").expect("put");
        let shared = RouterShared {
            cfg: RouterConfig {
                catalog_dir: Some(dir.clone()),
                ..RouterConfig::default()
            },
            obs: Obs::disabled(),
            fleet: Fleet::Static(Vec::new()),
            catalog: Some(catalog),
            stopping: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            probe_states: Mutex::new(Vec::new()),
        };
        let post = |body: &Value| Request {
            method: "POST".into(),
            path: "/v1/discover".into(),
            headers: Vec::new(),
            body: serde_json::to_string(body).expect("body").into_bytes(),
        };
        let inline = json!({"csv": "A,B\n1,2\n"});
        let by_ref = json!({"dataset": "routed@1"});
        assert_eq!(
            route_key(&post(&inline), Some(&inline), &shared),
            route_key(&post(&by_ref), Some(&by_ref), &shared),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An address nothing listens on (bound, then immediately released).
    fn dead_addr() -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    }

    /// Runs `route` against a fleet and returns (status, elapsed).
    fn route_once(cfg: RouterConfig, fleet: Fleet, body: &Value) -> (Option<u16>, Duration) {
        let shared = Arc::new(RouterShared {
            cfg,
            obs: Obs::disabled(),
            fleet,
            catalog: None,
            stopping: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            probe_states: Mutex::new(Vec::new()),
        });
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        let req = Request {
            method: "POST".into(),
            path: "/v1/discover".into(),
            headers: Vec::new(),
            body: serde_json::to_string(body).expect("body").into_bytes(),
        };
        let started = Instant::now();
        route(req, server_side, &shared);
        let elapsed = started.elapsed();
        let mut reply = Vec::new();
        client.read_to_end(&mut reply).expect("read");
        (parse_status(&reply), elapsed)
    }

    #[test]
    fn failover_backoff_is_clamped_to_the_request_deadline() {
        // A backoff schedule of minutes, but a client that only waits
        // 50 ms: the old loop would sleep the full backoff between every
        // failed attempt; the fix clamps each sleep to the remaining
        // deadline and answers 502 as soon as it has passed.
        let cfg = RouterConfig {
            retry_backoff_ms: 120_000,
            extra_rounds: 3,
            connect_timeout_ms: 200,
            obs: Obs::disabled(),
            ..RouterConfig::default()
        };
        let fleet = Fleet::Static(vec![dead_addr(), dead_addr()]);
        let (status, elapsed) = route_once(cfg, fleet, &json!({"timeout_ms": 50u64}));
        assert_eq!(status, Some(502), "dead fleet → bad gateway");
        assert!(
            elapsed < Duration::from_secs(10),
            "deadline-clamped failover must not sleep the configured {:?}-scale backoff (took {elapsed:?})",
            Duration::from_millis(120_000),
        );
    }

    #[test]
    fn single_attempt_failover_never_sleeps() {
        // One replica, no extra rounds: there is no retry to back off
        // for, so a pathological backoff setting must cost nothing.
        let cfg = RouterConfig {
            retry_backoff_ms: 600_000,
            extra_rounds: 0,
            connect_timeout_ms: 200,
            obs: Obs::disabled(),
            ..RouterConfig::default()
        };
        let fleet = Fleet::Static(vec![dead_addr()]);
        let (status, elapsed) = route_once(cfg, fleet, &json!({"csv": "A\n1\n"}));
        assert_eq!(status, Some(502));
        assert!(
            elapsed < Duration::from_secs(5),
            "no-retry path must answer without backoff (took {elapsed:?})"
        );
    }
}
