//! A persistent, versioned dataset/ontology catalog.
//!
//! `PUT /v1/datasets/{name}` registers a dataset (CSV text plus optional
//! ontology text) once; job requests then reference it as
//! `"dataset": "name"` or `"dataset": "name@version"` instead of
//! re-shipping hundreds of kilobytes of rows on every request. Entries
//! are:
//!
//! * **persistent** — each version is one checksummed snapshot file
//!   (`<name>.<version>.ckpt`, the same `OFDSNAP` envelope and atomic
//!   write path as checkpoints) in a catalog directory under the
//!   checkpoint root, so a registered dataset survives process restarts
//!   and full-fleet restarts;
//! * **versioned** — a re-`PUT` of an existing name appends the next
//!   version; older versions stay readable, and `name@version` pins one;
//! * **interned once** — the first job to touch `name@version` parses the
//!   CSV/ontology into a [`Relation`]/[`Ontology`] and caches the parsed
//!   entry behind an [`Arc`]; every later job on any worker thread shares
//!   it instead of re-parsing.
//!
//! The catalog directory is *shared between fleet workers* (they all
//! point at the same checkpoint root), which is what lets the router
//! route by dataset fingerprint: any worker can resolve any registered
//! dataset straight from disk even if a different worker registered it.
//! Cross-process freshness comes from re-listing the directory on cache
//! miss, not from any coordination protocol — the router's
//! consistent-hash routing keeps each dataset's writes on one worker in
//! the common case.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use ofd_core::{fnv1a64, FaultPlan, FxHashMap, Obs, Relation, SnapshotStore};
use ofd_datagen::csv;
use ofd_ontology::{parse_ontology, Ontology};
use serde_json::{json, Value};

use crate::peers::PeerTimeouts;
use crate::retry::RetryPolicy;

/// One resolved catalog entry: the raw texts (for fingerprinting and
/// byte-identical checkpoint keys) and the parsed, shareable inputs.
#[derive(Debug)]
pub struct CatalogEntry {
    /// Registered dataset name.
    pub name: String,
    /// Version of this entry (1-based, append-only).
    pub version: u64,
    /// The CSV text exactly as registered.
    pub csv: String,
    /// The ontology text exactly as registered (empty when none).
    pub ontology: String,
    /// FNV-1a digest of `csv` + `ontology`; the router routes on it.
    pub fingerprint: u64,
    /// Parsed relation, interned once per process.
    pub relation: Relation,
    /// Parsed ontology, interned once per process.
    pub ontology_parsed: Ontology,
}

/// Why a catalog operation failed, split the same way job errors are:
/// client mistakes map to 4xx, storage trouble to 5xx.
#[derive(Debug)]
pub enum CatalogError {
    /// Bad name, bad version syntax, unknown dataset, unparsable inputs.
    BadRequest(String),
    /// A pinned replicated write collided with *different* content
    /// already stored at that version — the replica must refuse rather
    /// than silently fork history (409).
    Conflict(String),
    /// The snapshot layer failed underneath a well-formed request.
    Storage(String),
}

impl CatalogError {
    /// The message, whichever side it is.
    pub fn message(&self) -> &str {
        match self {
            CatalogError::BadRequest(m)
            | CatalogError::Conflict(m)
            | CatalogError::Storage(m) => m,
        }
    }
}

/// Content digest of a dataset's raw texts — shared by [`Catalog::put`]
/// and the router, which fingerprints inline bodies the same way so a
/// dataset routes to the same worker whether shipped by name or inline.
pub fn content_fingerprint(csv_text: &str, onto_text: &str) -> u64 {
    let mut fp = ofd_core::Fingerprint::new();
    fp.update_str(csv_text);
    fp.update_str(onto_text);
    fp.finish()
}

/// Validates a dataset name: 1–64 chars of `[A-Za-z0-9_-]`. Dots are
/// excluded on purpose — the snapshot store uses `.` to separate the
/// stream name from the sequence number.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Whether a stored catalog body is committed. Entries written before
/// the two-phase scheme carry no flag and are treated as committed.
fn is_committed(body: &Value) -> bool {
    body.get("committed").and_then(Value::as_bool).unwrap_or(true)
}

/// Splits a `name` / `name@version` reference.
fn parse_reference(reference: &str) -> Result<(&str, Option<u64>), CatalogError> {
    let (name, version) = match reference.split_once('@') {
        Some((n, v)) => {
            let v: u64 = v.parse().map_err(|_| {
                CatalogError::BadRequest(format!("bad dataset version in {reference:?}"))
            })?;
            (n, Some(v))
        }
        None => (reference, None),
    };
    if !valid_name(name) {
        return Err(CatalogError::BadRequest(format!(
            "bad dataset name {name:?}: expected 1-64 chars of [A-Za-z0-9_-]"
        )));
    }
    Ok((name, version))
}

/// The persistent catalog; cheap to clone handles via [`Arc`].
#[derive(Debug)]
pub struct Catalog {
    store: SnapshotStore,
    obs: Obs,
    /// Sibling workers consulted when a reference misses the local disk
    /// (multi-host mode: the catalog is quorum-replicated, not shared
    /// through one filesystem, so a replica that missed a write — down
    /// during the PUT, or freshly re-imaged — repairs itself by fetching
    /// the version's snapshot from a peer).
    peers: Vec<std::net::SocketAddr>,
    /// Connect/read deadlines for all peer conversations.
    peer_timeouts: PeerTimeouts,
    /// Interned `(name, version)` → parsed entry. Never invalidated:
    /// versions are append-only and immutable once written. Only
    /// **committed** versions are ever interned — a pending version must
    /// re-run quorum confirmation on every touch until it commits.
    interned: Mutex<FxHashMap<(String, u64), Arc<CatalogEntry>>>,
}

/// What quorum confirmation of a pending (uncommitted) version decided.
enum PendingVerdict {
    /// A majority of the fleet holds the version: the write committed;
    /// flip it locally and serve it.
    Confirmed,
    /// A majority answered and fewer than a quorum hold it: the fan-out
    /// died before commit. The version is torn — delete it.
    Torn,
    /// Not enough peers answered to decide either way. Don't serve it,
    /// don't delete it; a later read retries.
    Unknown,
}

impl Catalog {
    /// Opens (or creates on first `put`) a catalog rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>, faults: FaultPlan, obs: Obs) -> Catalog {
        let mut store = SnapshotStore::new(dir);
        if faults.is_active() {
            store = store.with_faults(faults);
        }
        Catalog {
            store,
            obs,
            peers: Vec::new(),
            peer_timeouts: PeerTimeouts::default(),
            interned: Mutex::new(FxHashMap::default()),
        }
    }

    /// Installs the sibling-worker list used for peer-to-peer read
    /// repair on local miss.
    pub fn with_peers(mut self, peers: Vec<std::net::SocketAddr>) -> Catalog {
        self.peers = peers;
        self
    }

    /// Sets the connect/read deadlines used for every peer conversation.
    pub fn with_peer_timeouts(mut self, timeouts: PeerTimeouts) -> Catalog {
        self.peer_timeouts = timeouts;
        self
    }

    /// The directory entries persist in.
    pub fn dir(&self) -> &std::path::Path {
        self.store.dir()
    }

    /// Registers (or re-registers, bumping the version) a dataset. The
    /// CSV and ontology must parse — a catalog that accepts garbage
    /// would turn every later job into a 4xx lottery. Returns the entry.
    pub fn put(
        &self,
        name: &str,
        csv_text: &str,
        onto_text: &str,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        let version = self
            .store
            .versions(name)
            .map_err(|e| CatalogError::Storage(e.to_string()))?
            .last()
            .copied()
            .unwrap_or(0)
            + 1;
        self.save_entry(name, csv_text, onto_text, version, true)
    }

    /// Registers a dataset at an explicitly pinned version — the
    /// replicated-write path: the router picks one version number and
    /// fans it out, so every replica stores the same history. The stored
    /// version is **pending** (`"committed": false`) until the router's
    /// commit round flips it: a coordinator that dies mid-fan-out leaves
    /// pending files behind, never a readable torn version (reads run
    /// quorum confirmation — see `confirm_pending`). Pinned writes are
    /// **idempotent by content**: re-registering identical texts at an
    /// existing version acks without rewriting (a retried fan-out, or a
    /// shared-disk fleet where a sibling already landed the file), while
    /// different content at an existing version is a
    /// [`CatalogError::Conflict`] — replicas never fork history.
    pub fn put_pinned(
        &self,
        name: &str,
        csv_text: &str,
        onto_text: &str,
        version: u64,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        self.install_replica(name, csv_text, onto_text, version, false)
    }

    /// The body of [`Self::put_pinned`], with the commit state explicit —
    /// peer read-repair installs an already-committed copy directly.
    /// The idempotent-ack path parses the texts itself rather than going
    /// through `resolve`, so a retried fan-out PUT never triggers quorum
    /// confirmation mid-write.
    fn install_replica(
        &self,
        name: &str,
        csv_text: &str,
        onto_text: &str,
        version: u64,
        committed: bool,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        if version == 0 {
            return Err(CatalogError::BadRequest(
                "pinned version must be >= 1".into(),
            ));
        }
        if let Some(existing) = self
            .store
            .load_seq(name, version)
            .map_err(|e| CatalogError::Storage(e.to_string()))?
        {
            let same = existing.body.get("csv").and_then(Value::as_str) == Some(csv_text)
                && existing.body.get("ontology").and_then(Value::as_str) == Some(onto_text);
            if same {
                return self.parse_entry(name, version, csv_text, onto_text, false);
            }
            return Err(CatalogError::Conflict(format!(
                "dataset {name:?} version {version} already exists with different content"
            )));
        }
        self.save_entry(name, csv_text, onto_text, version, committed)
    }

    /// Parse, persist and (when committed) intern one `(name, version)`
    /// entry. The CSV and ontology must parse — a catalog that accepts
    /// garbage would turn every later job into a 4xx lottery.
    fn save_entry(
        &self,
        name: &str,
        csv_text: &str,
        onto_text: &str,
        version: u64,
        committed: bool,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::BadRequest(format!(
                "bad dataset name {name:?}: expected 1-64 chars of [A-Za-z0-9_-]"
            )));
        }
        let body = json!({
            "name": name,
            "version": version,
            "csv": csv_text,
            "ontology": onto_text,
            "committed": committed,
        });
        let entry = self.parse_entry(name, version, csv_text, onto_text, committed)?;
        self.store
            .save(name, version, &body)
            .map_err(|e| CatalogError::Storage(e.to_string()))?;
        self.obs.inc("serve.catalog.put");
        Ok(entry)
    }

    /// Parses the raw texts of one version into a [`CatalogEntry`],
    /// interning it only when `intern` (committed versions only — a
    /// pending version must stay un-cached so reads keep re-running
    /// quorum confirmation until it commits).
    fn parse_entry(
        &self,
        name: &str,
        version: u64,
        csv_text: &str,
        onto_text: &str,
        intern: bool,
    ) -> Result<Arc<CatalogEntry>, CatalogError> {
        let relation =
            csv::read_csv(csv_text).map_err(|e| CatalogError::BadRequest(format!("csv: {e}")))?;
        let ontology_parsed = if onto_text.is_empty() {
            Ontology::empty()
        } else {
            parse_ontology(onto_text)
                .map_err(|e| CatalogError::BadRequest(format!("ontology: {e}")))?
        };
        let entry = Arc::new(CatalogEntry {
            name: name.to_owned(),
            version,
            csv: csv_text.to_owned(),
            ontology: onto_text.to_owned(),
            fingerprint: content_fingerprint(csv_text, onto_text),
            relation,
            ontology_parsed,
        });
        if intern {
            self.interned
                .lock()
                .expect("catalog intern lock")
                .insert((name.to_owned(), version), entry.clone());
        }
        Ok(entry)
    }

    /// Local state of one version for the peer `stat` endpoint:
    /// `(present, committed)`. Distinguishing *answered without the
    /// version* from *unreachable* is what lets quorum confirmation
    /// declare a version torn instead of merely unknown.
    pub fn stat(&self, name: &str, version: u64) -> Result<(bool, bool), CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::BadRequest(format!(
                "bad dataset name {name:?}: expected 1-64 chars of [A-Za-z0-9_-]"
            )));
        }
        match self
            .store
            .load_seq(name, version)
            .map_err(|e| CatalogError::Storage(e.to_string()))?
        {
            Some(loaded) => Ok((true, is_committed(&loaded.body))),
            None => Ok((false, false)),
        }
    }

    /// Flips one stored version to committed — the second phase of the
    /// replicated write, and the repair action after a read confirms a
    /// pending version reached quorum. Idempotent; re-saving goes through
    /// the same atomic tmp+rename path as the original write. Returns
    /// whether the flag actually flipped.
    pub fn commit_version(&self, name: &str, version: u64) -> Result<bool, CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::BadRequest(format!(
                "bad dataset name {name:?}: expected 1-64 chars of [A-Za-z0-9_-]"
            )));
        }
        let Some(loaded) = self
            .store
            .load_seq(name, version)
            .map_err(|e| CatalogError::Storage(e.to_string()))?
        else {
            return Err(CatalogError::BadRequest(format!(
                "unknown dataset {name:?} version {version}"
            )));
        };
        if is_committed(&loaded.body) {
            return Ok(false);
        }
        let mut body = loaded.body;
        if let Value::Object(fields) = &mut body {
            match fields.iter_mut().find(|(k, _)| k == "committed") {
                Some((_, v)) => *v = Value::Bool(true),
                None => fields.push(("committed".to_owned(), Value::Bool(true))),
            }
        }
        self.store
            .save(name, version, &body)
            .map_err(|e| CatalogError::Storage(e.to_string()))?;
        Ok(true)
    }

    /// Deletes one stored version — the quorum-write *rollback* path:
    /// when a replicated PUT fails to reach majority ack, the router
    /// removes the pinned version from every replica that took it, so no
    /// survivor serves a write the fleet did not commit. Returns whether
    /// a file was actually removed; deleting an absent version is a
    /// no-op, keeping rollback idempotent.
    pub fn delete_version(&self, name: &str, version: u64) -> Result<bool, CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::BadRequest(format!(
                "bad dataset name {name:?}: expected 1-64 chars of [A-Za-z0-9_-]"
            )));
        }
        self.interned
            .lock()
            .expect("catalog intern lock")
            .remove(&(name.to_owned(), version));
        self.store
            .remove(name, version)
            .map_err(|e| CatalogError::Storage(e.to_string()))
    }

    /// The raw stored payload of one version (`{name, version, csv,
    /// ontology}`) — served by the internal
    /// `GET /v1/datasets/{name}/{version}/snapshot` transfer endpoint so
    /// a peer that missed the replicated write can install the entry
    /// verbatim.
    pub fn snapshot_payload(&self, name: &str, version: u64) -> Result<Value, CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::BadRequest(format!(
                "bad dataset name {name:?}: expected 1-64 chars of [A-Za-z0-9_-]"
            )));
        }
        let loaded = self
            .store
            .load_seq(name, version)
            .map_err(|e| CatalogError::Storage(e.to_string()))?
            .ok_or_else(|| {
                CatalogError::BadRequest(format!("unknown dataset {name:?} version {version}"))
            })?;
        Ok(loaded.body)
    }

    /// Resolves a `name` / `name@version` reference to its entry,
    /// interning the parse on first touch. A bare name means the newest
    /// **committed** version: pending versions (a replicated write whose
    /// coordinator may have died mid-fan-out) are quorum-confirmed on
    /// read, and a version confirmed torn is skipped in favour of the
    /// next older one — a torn version is never readable.
    pub fn resolve(&self, reference: &str) -> Result<Arc<CatalogEntry>, CatalogError> {
        let (name, version) = parse_reference(reference)?;
        match version {
            Some(v) => self.resolve_version(name, v)?.ok_or_else(|| {
                CatalogError::BadRequest(format!("unknown dataset {name:?} version {v}"))
            }),
            None => {
                let versions = self
                    .store
                    .versions(name)
                    .map_err(|e| CatalogError::Storage(e.to_string()))?;
                if versions.is_empty() {
                    // Nothing local: in multi-host mode this replica may
                    // simply have missed the quorum write — ask the
                    // peers what the newest version is before declaring
                    // unknown.
                    let v = self.newest_on_peers(name).ok_or_else(|| {
                        CatalogError::BadRequest(format!("unknown dataset {name:?}"))
                    })?;
                    return self.resolve_version(name, v)?.ok_or_else(|| {
                        CatalogError::BadRequest(format!("unknown dataset {name:?}"))
                    });
                }
                // Newest first; a torn newest version must not shadow
                // the last committed one.
                for &v in versions.iter().rev() {
                    if let Some(entry) = self.resolve_version(name, v)? {
                        return Ok(entry);
                    }
                }
                Err(CatalogError::BadRequest(format!(
                    "unknown dataset {name:?}"
                )))
            }
        }
    }

    /// Resolves one pinned `(name, version)`. `Ok(None)` means the
    /// version is not servable here — absent everywhere, or confirmed
    /// torn (and deleted) by quorum confirmation.
    fn resolve_version(
        &self,
        name: &str,
        version: u64,
    ) -> Result<Option<Arc<CatalogEntry>>, CatalogError> {
        if let Some(entry) = self
            .interned
            .lock()
            .expect("catalog intern lock")
            .get(&(name.to_owned(), version))
        {
            self.obs.inc("serve.catalog.hit");
            return Ok(Some(entry.clone()));
        }
        let loaded = match self
            .store
            .load_seq(name, version)
            .map_err(|e| CatalogError::Storage(e.to_string()))?
        {
            Some(loaded) => loaded,
            None => {
                // Read repair: fetch the version's snapshot from a peer,
                // install it locally, then resolve from disk like
                // everyone else — so a fetched *pending* copy still runs
                // quorum confirmation instead of being served blind.
                if self.fetch_from_peers(name, version).is_some() {
                    return self.resolve_version(name, version);
                }
                return Ok(None);
            }
        };
        if !is_committed(&loaded.body) {
            match self.confirm_pending(name, version) {
                PendingVerdict::Confirmed => {
                    self.commit_version(name, version)?;
                    self.obs.inc("serve.catalog.read_repaired");
                }
                PendingVerdict::Torn => {
                    self.delete_version(name, version)?;
                    self.obs.inc("serve.catalog.read_repaired");
                    return Ok(None);
                }
                PendingVerdict::Unknown => {
                    return Err(CatalogError::Storage(format!(
                        "dataset {name:?} version {version} is pending and the \
                         quorum is unreachable — retry when the fleet heals"
                    )));
                }
            }
        }
        let text = |field: &str| {
            loaded
                .body
                .get(field)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| {
                    CatalogError::Storage(format!(
                        "catalog entry {name}@{version} is missing field {field:?}"
                    ))
                })
        };
        let csv_text = text("csv")?;
        let onto_text = text("ontology")?;
        self.obs.inc("serve.catalog.miss");
        self.parse_entry(name, version, &csv_text, &onto_text, true)
            .map(Some)
            .map_err(|e| CatalogError::Storage(format!("catalog entry {name}@{version}: {e}", e = e.message())))
    }

    /// Quorum confirmation of a locally-pending version: ask every peer
    /// for its `stat` of `(name, version)` and count holders among those
    /// that answered. This replica counts as one holder and one answer.
    /// A peer that reports the version *committed* is proof positive —
    /// the commit round reached at least one replica, which it only does
    /// after quorum ack.
    fn confirm_pending(&self, name: &str, version: u64) -> PendingVerdict {
        let fleet = self.peers.len() + 1;
        let quorum = fleet / 2 + 1;
        let mut holders = 1usize;
        let mut answered = 1usize;
        let path = format!("/v1/datasets/{name}/{version}/stat");
        let policy = RetryPolicy::new(2, 25);
        for &peer in &self.peers {
            let reply = policy.run(
                |_| crate::peers::peer_json(peer, "GET", &path, None, &self.peer_timeouts),
                |e| e.kind() == std::io::ErrorKind::ConnectionRefused,
            );
            if let Ok((200, reply)) = reply {
                answered += 1;
                if reply.get("committed").and_then(Value::as_bool) == Some(true) {
                    return PendingVerdict::Confirmed;
                }
                if reply.get("present").and_then(Value::as_bool) == Some(true) {
                    holders += 1;
                }
            }
        }
        if holders >= quorum {
            PendingVerdict::Confirmed
        } else if answered >= quorum {
            PendingVerdict::Torn
        } else {
            PendingVerdict::Unknown
        }
    }

    /// Metadata for `GET /v1/datasets/{name}` — never the row payload;
    /// clients that want the data reference it from a job instead.
    pub fn describe(&self, reference: &str) -> Result<Value, CatalogError> {
        let entry = self.resolve(reference)?;
        let versions = self
            .store
            .versions(&entry.name)
            .map_err(|e| CatalogError::Storage(e.to_string()))?;
        Ok(json!({
            "name": entry.name.clone(),
            "version": entry.version,
            "versions": versions,
            "n_rows": entry.relation.n_rows() as u64,
            "n_attrs": entry.relation.schema().len() as u64,
            "csv_bytes": entry.csv.len() as u64,
            "ontology_bytes": entry.ontology.len() as u64,
            "fingerprint": format!("{:016x}", entry.fingerprint),
        }))
    }

    /// All registered dataset names (from disk, so fleet-wide).
    pub fn list(&self) -> Result<Vec<String>, CatalogError> {
        self.store
            .streams()
            .map_err(|e| CatalogError::Storage(e.to_string()))
    }

    /// The newest version any peer reports for `name` (via describe), or
    /// `None` when no peer knows it either.
    fn newest_on_peers(&self, name: &str) -> Option<u64> {
        let path = format!("/v1/datasets/{name}");
        self.peers
            .iter()
            .filter_map(|&peer| {
                match crate::peers::peer_json(peer, "GET", &path, None, &self.peer_timeouts) {
                    Ok((200, reply)) => reply.get("version").and_then(Value::as_u64),
                    _ => None,
                }
            })
            .max()
    }

    /// Fetches `name@version` from the first peer that has it and
    /// installs it locally via the pinned-write path (so the repaired
    /// copy is byte-compatible with the quorum's), preserving the peer's
    /// commit state. Counted as `serve.catalog.peer_fetch`. Transient
    /// transport errors get a small retry budget; connection-refused
    /// moves on to the next peer without sleeping.
    fn fetch_from_peers(&self, name: &str, version: u64) -> Option<Arc<CatalogEntry>> {
        let path = format!("/v1/datasets/{name}/{version}/snapshot");
        let policy = RetryPolicy::new(2, 50);
        for &peer in &self.peers {
            let Ok((200, payload)) = policy.run(
                |_| crate::peers::peer_json(peer, "GET", &path, None, &self.peer_timeouts),
                |e| e.kind() == std::io::ErrorKind::ConnectionRefused,
            ) else {
                continue;
            };
            let (Some(csv_text), Some(onto_text)) = (
                payload.get("csv").and_then(Value::as_str),
                payload.get("ontology").and_then(Value::as_str),
            ) else {
                continue;
            };
            let committed = is_committed(&payload);
            if let Ok(entry) =
                self.install_replica(name, csv_text, onto_text, version, committed)
            {
                self.obs.inc("serve.catalog.peer_fetch");
                return Some(entry);
            }
        }
        None
    }

    /// Routing digest of a dataset reference without parsing the data:
    /// the digest of the *content* of the resolved version, falling back
    /// to a digest of the reference string when the dataset is unknown
    /// here (the target worker will answer the 4xx).
    pub fn route_fingerprint(&self, reference: &str) -> u64 {
        match self.resolve(reference) {
            Ok(entry) => entry.fingerprint,
            Err(_) => fnv1a64(reference.as_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ofd-catalog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (String, String) {
        let ds = ofd_datagen::clinical(&ofd_datagen::PresetConfig {
            n_rows: 60,
            n_attrs: 4,
            n_ofds: 1,
            seed: 3,
            ..ofd_datagen::PresetConfig::default()
        });
        (
            csv::write_csv(&ds.clean),
            ofd_ontology::write_ontology(&ds.full_ontology),
        )
    }

    fn catalog(dir: &Path) -> Catalog {
        Catalog::open(dir.to_path_buf(), FaultPlan::none(), Obs::disabled())
    }

    #[test]
    fn put_resolve_and_versioning() {
        let dir = tmp("versioning");
        let c = catalog(&dir);
        let (csv_text, onto_text) = sample();
        let v1 = c.put("clinical", &csv_text, &onto_text).expect("put v1");
        assert_eq!(v1.version, 1);
        let v2 = c.put("clinical", &csv_text, "").expect("put v2");
        assert_eq!(v2.version, 2);

        // Bare name resolves newest; @version pins.
        assert_eq!(c.resolve("clinical").expect("latest").version, 2);
        let pinned = c.resolve("clinical@1").expect("pinned");
        assert_eq!(pinned.version, 1);
        assert_eq!(pinned.ontology, onto_text);
        assert!(c.resolve("clinical@9").is_err());
        assert!(c.resolve("nope").is_err());
        assert_eq!(c.list().expect("list"), vec!["clinical"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_reopen_and_intern_once() {
        let dir = tmp("reopen");
        let (csv_text, onto_text) = sample();
        catalog(&dir).put("kiva", &csv_text, &onto_text).expect("put");

        // A fresh catalog (fresh process, restarted fleet) sees it.
        let c2 = catalog(&dir);
        let a = c2.resolve("kiva").expect("resolve after reopen");
        let b = c2.resolve("kiva@1").expect("resolve again");
        assert!(Arc::ptr_eq(&a, &b), "second resolve reuses the interned parse");
        assert_eq!(a.csv, csv_text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_handles_share_one_directory() {
        // A worker registers; a *different* worker (separate handle, same
        // dir — the fleet case) resolves without any coordination.
        let dir = tmp("shared");
        let (csv_text, _) = sample();
        let writer = catalog(&dir);
        let reader = catalog(&dir);
        writer.put("shared", &csv_text, "").expect("put");
        let got = reader.resolve("shared").expect("cross-handle resolve");
        assert_eq!(got.csv, csv_text);
        assert_eq!(
            got.fingerprint,
            content_fingerprint(&csv_text, ""),
            "router and worker agree on the routing digest"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_names_versions_and_garbage() {
        let dir = tmp("reject");
        let c = catalog(&dir);
        let (csv_text, _) = sample();
        for bad in ["", "has.dot", "has/slash", "has space", &"x".repeat(65)] {
            assert!(matches!(
                c.put(bad, &csv_text, ""),
                Err(CatalogError::BadRequest(_))
            ));
        }
        assert!(matches!(
            c.put("ok", &csv_text, "not an ontology {{{"),
            Err(CatalogError::BadRequest(_))
        ));
        assert!(matches!(
            c.resolve("ok@notanumber"),
            Err(CatalogError::BadRequest(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn describe_reports_metadata_not_rows() {
        let dir = tmp("describe");
        let c = catalog(&dir);
        let (csv_text, onto_text) = sample();
        c.put("meta", &csv_text, &onto_text).expect("put");
        let d = c.describe("meta").expect("describe");
        assert_eq!(d.get("name").and_then(Value::as_str), Some("meta"));
        assert_eq!(d.get("version").and_then(Value::as_u64), Some(1));
        assert_eq!(d.get("n_rows").and_then(Value::as_u64), Some(60));
        assert!(d.get("csv").is_none(), "metadata only, no payload");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
