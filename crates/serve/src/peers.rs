//! Static peer lists and the tiny HTTP client behind cross-host recovery.
//!
//! Multi-host mode (`fastofd serve --peers host:port,...`) gives every
//! process a fixed list of sibling workers. Three subsystems use it:
//!
//! * the router fans catalog `PUT`s out to a write quorum of peers,
//! * [`Catalog`](crate::catalog::Catalog) resolves a locally-missing
//!   dataset version by fetching its snapshot from a peer, and
//! * job / stream recovery ships a dead owner's newest checkpoint across
//!   filesystems via `GET /v1/{jobs,streams}/{fingerprint}/snapshot`.
//!
//! Everything here is bounded: configurable connect/read deadlines
//! ([`PeerTimeouts`]), one read to EOF verified against `content-length`
//! (a torn reply is a transport error, never a parsed success), and a
//! shared [`RetryPolicy`](crate::retry::RetryPolicy) in the fetch path.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ofd_core::SnapshotStore;
use serde_json::Value;

use crate::retry::RetryPolicy;

/// Connect/read deadlines for peer-to-peer transfer requests.
///
/// The defaults are the historical constants (1 s connect, 10 s read);
/// chaos runs tighten both via `--peer-timeout-ms` so a blackholed peer
/// costs milliseconds instead of stalling a recovery path for 10 s.
#[derive(Debug, Clone, Copy)]
pub struct PeerTimeouts {
    /// Connect timeout.
    pub connect: Duration,
    /// Read/write deadline for the whole exchange.
    pub read: Duration,
}

impl Default for PeerTimeouts {
    fn default() -> PeerTimeouts {
        PeerTimeouts {
            connect: Duration::from_millis(1_000),
            read: Duration::from_millis(10_000),
        }
    }
}

impl PeerTimeouts {
    /// Timeouts derived from a single `peer_timeout_ms` knob: the read
    /// deadline is the knob, the connect timeout is clamped to at most
    /// 1 s (connecting should always be fast; only transfers are slow).
    pub fn from_ms(peer_timeout_ms: u64) -> PeerTimeouts {
        let read = Duration::from_millis(peer_timeout_ms.max(1));
        PeerTimeouts {
            connect: read.min(Duration::from_millis(1_000)),
            read,
        }
    }
}

/// Parse a comma-separated `host:port,...` peer list into socket
/// addresses. Entries are trimmed; empty entries are rejected so a typo
/// like `a:1,,b:2` fails loudly instead of silently shrinking the quorum.
pub fn parse_peer_list(spec: &str) -> Result<Vec<SocketAddr>, String> {
    let mut peers = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(format!("empty entry in peer list {spec:?}"));
        }
        let addr = entry
            .to_socket_addrs()
            .map_err(|e| format!("peer {entry:?}: {e}"))?
            .next()
            .ok_or_else(|| format!("peer {entry:?}: no addresses"))?;
        peers.push(addr);
    }
    Ok(peers)
}

/// One bounded HTTP exchange with a peer: connect, send `method path`
/// with an optional JSON body, read the reply to EOF. Returns the status
/// code and raw body bytes. A reply whose body is shorter than its
/// `content-length` header is a transport error (`UnexpectedEof`) — a
/// connection torn mid-body must never surface as a parsed success.
pub(crate) fn peer_exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Value>,
    timeouts: &PeerTimeouts,
) -> io::Result<(u16, Vec<u8>)> {
    let stream = TcpStream::connect_timeout(&addr, timeouts.connect)?;
    stream.set_read_timeout(Some(timeouts.read))?;
    stream.set_write_timeout(Some(timeouts.read))?;
    let payload = body.map(|v| v.to_string()).unwrap_or_default();
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nhost: peer\r\ncontent-length: {}\r\nconnection: close\r\n",
        payload.len()
    );
    if body.is_some() {
        req.push_str("content-type: application/json\r\n");
    }
    req.push_str("\r\n");
    let mut stream = stream;
    stream.write_all(req.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated peer reply"))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad peer status line"))?;
    let reply = raw[head_end + 4..].to_vec();
    if let Some(expected) = content_length(&head) {
        if reply.len() < expected {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("short peer reply: {} of {expected} body bytes", reply.len()),
            ));
        }
    }
    Ok((status, reply))
}

/// Parse the `content-length` header out of a raw reply head, if any.
pub(crate) fn content_length(head: &str) -> Option<usize> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

/// Like [`peer_exchange`], but parse the body as JSON. Non-JSON bodies
/// become `Null` so callers can treat "peer answered garbage" the same
/// as "peer answered nothing".
pub(crate) fn peer_json(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Value>,
    timeouts: &PeerTimeouts,
) -> io::Result<(u16, Value)> {
    let (status, raw) = peer_exchange(addr, method, path, body, timeouts)?;
    let parsed = std::str::from_utf8(&raw)
        .ok()
        .and_then(|text| serde_json::from_str(text).ok())
        .unwrap_or(Value::Null);
    Ok((status, parsed))
}

/// Fetch a snapshot bundle (`{"files": [{name, seq, body}, ...]}`) from
/// the first peer that answers 200 for `path`, and install every file
/// into `store` via [`SnapshotStore::save`]. Each peer gets a small
/// retry budget (transient resets and torn replies are exactly what the
/// chaos proxy injects); connection-refused moves on without sleeping.
/// Returns the number of snapshot files installed (0 when no peer had
/// anything to ship — callers then fall back to re-execution from
/// inputs).
pub(crate) fn fetch_and_install(
    peers: &[SocketAddr],
    path: &str,
    store: &SnapshotStore,
    timeouts: &PeerTimeouts,
) -> usize {
    let policy = RetryPolicy::new(2, 50);
    for &peer in peers {
        let Ok((200, bundle)) = policy.run(
            |_| peer_json(peer, "GET", path, None, timeouts),
            |e| e.kind() == io::ErrorKind::ConnectionRefused,
        ) else {
            continue;
        };
        let Some(files) = bundle.get("files").and_then(Value::as_array) else {
            continue;
        };
        let mut installed = 0usize;
        for file in files {
            let (Some(name), Some(seq), Some(body)) = (
                file.get("name").and_then(Value::as_str),
                file.get("seq").and_then(Value::as_u64),
                file.get("body"),
            ) else {
                continue;
            };
            if store.save(name, seq, body).is_ok() {
                installed += 1;
            }
        }
        if installed > 0 {
            return installed;
        }
    }
    0
}

/// Build the snapshot-bundle JSON a transfer endpoint serves: the newest
/// snapshot per stream name found in `store`. Returns `None` when the
/// store holds nothing to ship.
pub(crate) fn snapshot_bundle(store: &SnapshotStore) -> Option<Value> {
    let names = store.streams().ok()?;
    let mut files = Vec::new();
    for name in names {
        if let Ok(Some(loaded)) = store.load_latest(&name) {
            files.push(serde_json::json!({
                "name": name,
                "seq": loaded.seq,
                "body": loaded.body,
            }));
        }
    }
    if files.is_empty() {
        None
    } else {
        Some(serde_json::json!({ "files": files }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_lists_parse_and_reject_empty_entries() {
        let peers = parse_peer_list("127.0.0.1:7001, 127.0.0.1:7002").expect("two peers");
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].port(), 7001);
        assert_eq!(peers[1].port(), 7002);
        assert!(parse_peer_list("127.0.0.1:7001,,127.0.0.1:7002").is_err());
        assert!(parse_peer_list("").is_err());
        assert!(parse_peer_list("not-an-addr").is_err());
    }

    #[test]
    fn snapshot_bundles_round_trip_through_fetch_and_install() {
        let src_dir = std::env::temp_dir().join(format!("ofd-peers-src-{}", std::process::id()));
        let dst_dir = std::env::temp_dir().join(format!("ofd-peers-dst-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&src_dir);
        let _ = std::fs::remove_dir_all(&dst_dir);
        let src = SnapshotStore::new(&src_dir);
        src.save("session", 3, &serde_json::json!({"edits": [1, 2, 3]}))
            .expect("seed snapshot");
        let bundle = snapshot_bundle(&src).expect("bundle with one file");

        // Serve the bundle from a throwaway listener, then install it
        // into a second store through the real client path.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let body = bundle.to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 4096];
            let _ = conn.read(&mut buf);
            let reply = format!(
                "HTTP/1.1 200 OK\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                body.len(),
                body
            );
            conn.write_all(reply.as_bytes()).expect("reply");
        });

        let dst = SnapshotStore::new(&dst_dir);
        let installed =
            fetch_and_install(&[addr], "/v1/streams/00/snapshot", &dst, &PeerTimeouts::default());
        server.join().expect("server thread");
        assert_eq!(installed, 1);
        let loaded = dst.load_latest("session").expect("load").expect("present");
        assert_eq!(loaded.seq, 3);
        assert_eq!(
            loaded.body.get("edits"),
            Some(&serde_json::json!([1, 2, 3]))
        );

        let _ = std::fs::remove_dir_all(&src_dir);
        let _ = std::fs::remove_dir_all(&dst_dir);
    }

    #[test]
    fn short_replies_are_transport_errors_not_parsed_successes() {
        // A peer that advertises 100 body bytes but closes after 5: the
        // client must surface UnexpectedEof, never a 200 with a torn body.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 4096];
            let _ = conn.read(&mut buf);
            let reply = "HTTP/1.1 200 OK\r\ncontent-length: 100\r\nconnection: close\r\n\r\ntorn!";
            conn.write_all(reply.as_bytes()).expect("reply");
        });
        let err = peer_exchange(addr, "GET", "/healthz", None, &PeerTimeouts::default())
            .expect_err("short body must not parse");
        server.join().expect("server thread");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("short peer reply"), "got: {err}");
    }

    #[test]
    fn peer_timeouts_derive_from_a_single_knob() {
        let t = PeerTimeouts::from_ms(250);
        assert_eq!(t.read, Duration::from_millis(250));
        assert_eq!(t.connect, Duration::from_millis(250), "connect clamps to read when tighter");
        let t = PeerTimeouts::from_ms(30_000);
        assert_eq!(t.read, Duration::from_millis(30_000));
        assert_eq!(t.connect, Duration::from_millis(1_000), "connect caps at 1 s");
    }
}
