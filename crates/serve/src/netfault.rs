//! Deterministic in-process chaos proxy for network fault injection.
//!
//! [`NetFaultProxy`] fronts any worker/peer TCP address and injects the
//! five network [`FaultSite`](ofd_core::FaultSite)s as a deterministic
//! function of `(seed, site, occurrence)`, driven by the same seeded
//! [`FaultPlan`](ofd_core::FaultPlan) and `--faults` spec grammar as the
//! process-local sites. Connections are probed **in accept order**, so a
//! sequential client replays the identical toxic schedule from the same
//! seed — that replayability is what turns a chaos soak from "we saw it
//! fail once" into a pinned regression test.
//!
//! Toxic semantics (one per connection, severity-ordered short-circuit —
//! see `NET_SITES` in ofd-core):
//!
//! * `net-refuse` — close the client connection immediately, before
//!   reading a byte: the upstream might as well not be listening.
//! * `net-blackhole` — read the request, then never respond; the
//!   connection stays open until the client gives up. Exercises client
//!   read deadlines.
//! * `net-reset` — relay the request, then write the reply head plus
//!   roughly half the body and close abruptly: a connection reset
//!   mid-body. Exercises short-read detection.
//! * `net-partial` — like reset, but after the partial write the
//!   connection stalls *open*: the client's own deadline must fire.
//! * `net-delay` — sleep the plan's `delay-ms`, then relay cleanly. The
//!   reply is untouched; only latency is injected.
//!
//! Every applied toxic is counted under `serve.net.*` (pinned in the
//! metrics schema) and appended to an in-memory schedule log so a soak
//! can assert `injected == Σ plan.fired(net-*)` and that two proxies
//! with the same spec replay the same schedule.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ofd_core::{FaultPlan, NetFault, Obs};

/// The network-chaos counters, touched at proxy (and router) bind time
/// so a metrics scrape of an idle process still shows them at zero.
pub const NET_COUNTERS: [&str; 4] = [
    "serve.net.injected",
    "serve.net.resets",
    "serve.net.blackholes",
    "serve.net.retries_exhausted",
];

/// How long a toxic handler will babysit a stalled connection before
/// force-closing it — a backstop so a client that never times out cannot
/// leak proxy threads forever.
const STALL_CAP: Duration = Duration::from_secs(30);

/// Timeouts for the proxy's own relay I/O (connect to upstream, read the
/// client request). Generous: the proxy must never be the bottleneck the
/// faults are attributed to.
const RELAY_IO: Duration = Duration::from_secs(30);

/// An in-process TCP proxy that forwards `127.0.0.1:<port> -> upstream`
/// and fires deterministic network toxics. Bind one per worker/peer
/// address and point the router (or a peer list) at [`Self::addr`].
pub struct NetFaultProxy {
    addr: SocketAddr,
    plan: Arc<FaultPlan>,
    schedule: Arc<Mutex<Vec<String>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetFaultProxy {
    /// Binds the proxy on an ephemeral localhost port in front of
    /// `upstream`. `plan` decides the toxic schedule; `obs` receives the
    /// `serve.net.*` counters.
    pub fn bind(upstream: SocketAddr, plan: Arc<FaultPlan>, obs: Obs) -> io::Result<NetFaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        for name in NET_COUNTERS {
            obs.touch_counter(name);
        }
        let schedule = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let plan = Arc::clone(&plan);
            let schedule = Arc::clone(&schedule);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = conn else { continue };
                    // Probe in the accept loop, not the handler thread:
                    // occurrence order == accept order, which is what
                    // makes the schedule a pure function of the seed.
                    let toxic = plan.net_fault();
                    schedule
                        .lock()
                        .unwrap()
                        .push(toxic.map(|t| t.label().to_string()).unwrap_or_else(|| "pass".into()));
                    if let Some(t) = toxic {
                        obs.inc("serve.net.injected");
                        match t {
                            NetFault::Reset => obs.inc("serve.net.resets"),
                            NetFault::Blackhole => obs.inc("serve.net.blackholes"),
                            _ => {}
                        }
                    }
                    let delay = plan.delay_duration();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let _ = handle(client, upstream, toxic, delay, &stop);
                    });
                }
            })
        };
        Ok(NetFaultProxy {
            addr,
            plan,
            schedule,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here instead of at the
    /// upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fault plan driving this proxy (for `fired()` accounting).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The per-connection toxic schedule so far, in accept order: one
    /// entry per connection, a toxic label or `"pass"`.
    pub fn schedule(&self) -> Vec<String> {
        self.schedule.lock().unwrap().clone()
    }

    /// Stops the accept loop and joins it. Called on drop; explicit for
    /// tests that want deterministic teardown.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Self-connect to unblock the accept loop.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NetFaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one HTTP/1.1 request (head + `content-length` body) off the
/// client. The client keeps its write side open awaiting the reply, so
/// read-to-EOF would deadlock — framing is the only option.
fn read_request(client: &mut TcpStream) -> io::Result<Vec<u8>> {
    client.set_read_timeout(Some(RELAY_IO))?;
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if raw.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized request head"));
        }
        match client.read(&mut buf)? {
            0 => return Err(io::ErrorKind::UnexpectedEof.into()),
            n => raw.extend_from_slice(&buf[..n]),
        }
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let body_len = crate::peers::content_length(&head).unwrap_or(0);
    while raw.len() < head_end + 4 + body_len {
        match client.read(&mut buf)? {
            0 => return Err(io::ErrorKind::UnexpectedEof.into()),
            n => raw.extend_from_slice(&buf[..n]),
        }
    }
    Ok(raw)
}

/// Forwards `request` to the upstream and reads the whole reply (workers
/// answer `connection: close`, so EOF delimits it). The write side stays
/// open until the reply is in hand: a half-close here reads as EOF to the
/// worker's disconnect watcher, which would cancel the very job whose
/// reply we are waiting for — the toxic would then corrupt the *work*,
/// not just the wire, and no real router half-closes mid-exchange.
fn upstream_reply(upstream: SocketAddr, request: &[u8]) -> io::Result<Vec<u8>> {
    let mut conn = TcpStream::connect_timeout(&upstream, RELAY_IO)?;
    conn.set_read_timeout(Some(RELAY_IO))?;
    conn.set_write_timeout(Some(RELAY_IO))?;
    conn.write_all(request)?;
    let mut reply = Vec::new();
    conn.read_to_end(&mut reply)?;
    Ok(reply)
}

/// Parks on the connection until the client closes, `stop` flips, or the
/// stall cap expires — the shared tail of `blackhole` and `partial`.
fn stall_until_abandoned(client: &mut TcpStream, stop: &AtomicBool) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(100)));
    let start = std::time::Instant::now();
    let mut sink = [0u8; 1024];
    while start.elapsed() < STALL_CAP && !stop.load(Ordering::SeqCst) {
        match client.read(&mut sink) {
            Ok(0) => break,                 // client gave up
            Ok(_) => continue,              // drain stray bytes
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
                continue
            }
            Err(_) => break,
        }
    }
}

/// Handles one proxied connection under an optional toxic.
fn handle(
    mut client: TcpStream,
    upstream: SocketAddr,
    toxic: Option<NetFault>,
    delay: Duration,
    stop: &AtomicBool,
) -> io::Result<()> {
    match toxic {
        Some(NetFault::Refuse) => {
            // Close before reading a byte: indistinguishable from a
            // refused/reset connection at the client.
            let _ = client.shutdown(Shutdown::Both);
            Ok(())
        }
        Some(NetFault::Blackhole) => {
            let _ = read_request(&mut client);
            stall_until_abandoned(&mut client, stop);
            let _ = client.shutdown(Shutdown::Both);
            Ok(())
        }
        Some(NetFault::Reset) | Some(NetFault::Partial) => {
            let request = read_request(&mut client)?;
            let reply = upstream_reply(upstream, &request)?;
            // Write the head plus about half the body, so the client has
            // a status line and a content-length it can never satisfy.
            let head_end = reply
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|p| p + 4)
                .unwrap_or(0);
            let torn = head_end + (reply.len() - head_end) / 2;
            client.set_write_timeout(Some(RELAY_IO))?;
            client.write_all(&reply[..torn])?;
            let _ = client.flush();
            if matches!(toxic, Some(NetFault::Partial)) {
                // Stall open: the client's own read deadline must fire.
                stall_until_abandoned(&mut client, stop);
            }
            let _ = client.shutdown(Shutdown::Both);
            Ok(())
        }
        Some(NetFault::Delay) | None => {
            if matches!(toxic, Some(NetFault::Delay)) {
                std::thread::sleep(delay);
            }
            let request = read_request(&mut client)?;
            let reply = upstream_reply(upstream, &request)?;
            client.set_write_timeout(Some(RELAY_IO))?;
            client.write_all(&reply)?;
            let _ = client.flush();
            let _ = client.shutdown(Shutdown::Both);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peers::{peer_exchange, PeerTimeouts};

    /// A scripted upstream that answers every request with a fixed JSON
    /// body, `connection: close`.
    fn scripted_upstream(body: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { continue };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 8192];
                    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                    let _ = conn.read(&mut buf);
                    let reply = format!(
                        "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    let _ = conn.write_all(reply.as_bytes());
                });
            }
        });
        addr
    }

    fn quick() -> PeerTimeouts {
        PeerTimeouts {
            connect: Duration::from_millis(500),
            read: Duration::from_millis(500),
        }
    }

    #[test]
    fn clean_passthrough_relays_byte_identical_replies() {
        let upstream = scripted_upstream("{\"ok\":true}");
        let plan = Arc::new(FaultPlan::parse("seed=1").expect("plan"));
        let proxy = NetFaultProxy::bind(upstream, plan, Obs::disabled()).expect("proxy");
        for _ in 0..3 {
            let (status, body) =
                peer_exchange(proxy.addr(), "GET", "/x", None, &quick()).expect("clean relay");
            assert_eq!(status, 200);
            assert_eq!(body, b"{\"ok\":true}");
        }
        assert_eq!(proxy.schedule(), vec!["pass", "pass", "pass"]);
    }

    #[test]
    fn reset_and_partial_surface_as_short_read_transport_errors() {
        let upstream = scripted_upstream("{\"payload\":\"0123456789abcdef\"}");
        for spec in ["seed=9,net-reset@1", "seed=9,net-partial@1"] {
            let plan = Arc::new(FaultPlan::parse(spec).expect("plan"));
            let proxy = NetFaultProxy::bind(upstream, Arc::clone(&plan), Obs::disabled()).expect("proxy");
            let err = peer_exchange(proxy.addr(), "GET", "/x", None, &quick())
                .expect_err("torn reply must be a transport error");
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ),
                "{spec}: unexpected error {err:?}"
            );
            // After the toxic fires once, the proxy relays cleanly again.
            let (status, _) = peer_exchange(proxy.addr(), "GET", "/x", None, &quick())
                .expect("clean after the scheduled toxic");
            assert_eq!(status, 200);
        }
    }

    #[test]
    fn refuse_and_blackhole_never_yield_a_reply() {
        let upstream = scripted_upstream("{}");
        let plan = Arc::new(FaultPlan::parse("seed=3,net-refuse@1,net-blackhole@1").expect("plan"));
        let obs = Obs::enabled();
        let proxy = NetFaultProxy::bind(upstream, plan, obs.clone()).expect("proxy");
        // Connection 1: refuse (severity order puts it first).
        assert!(peer_exchange(proxy.addr(), "GET", "/x", None, &quick()).is_err());
        // Connection 2: blackhole — the client's read deadline fires.
        assert!(peer_exchange(proxy.addr(), "GET", "/x", None, &quick()).is_err());
        assert_eq!(proxy.schedule(), vec!["refuse", "blackhole"]);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("serve.net.injected"), Some(2));
        assert_eq!(snap.counter("serve.net.blackholes"), Some(1));
        assert_eq!(snap.counter("serve.net.resets"), Some(0));
    }

    #[test]
    fn same_seed_replays_the_same_toxic_schedule_across_proxies() {
        let upstream = scripted_upstream("{\"n\":1}");
        let spec = "seed=77,net-reset%0.3,net-delay%0.3,delay-ms=1";
        let run = |spec: &str| -> Vec<String> {
            let plan = Arc::new(FaultPlan::parse(spec).expect("plan"));
            let proxy = NetFaultProxy::bind(upstream, plan, Obs::disabled()).expect("proxy");
            for _ in 0..24 {
                let _ = peer_exchange(proxy.addr(), "GET", "/x", None, &quick());
            }
            let schedule = proxy.schedule();
            assert_eq!(schedule.len(), 24, "one schedule entry per connection");
            schedule
        };
        let first = run(spec);
        let second = run(spec);
        assert_eq!(first, second, "same seed, same toxic schedule");
        assert!(first.iter().any(|t| t != "pass"), "schedule actually fired toxics");
        let other = run("seed=78,net-reset%0.3,net-delay%0.3,delay-ms=1");
        assert_ne!(first, other, "different seed, different schedule");
    }

    #[test]
    fn injected_counter_matches_the_plans_fired_total() {
        let upstream = scripted_upstream("{}");
        let plan = Arc::new(FaultPlan::parse("seed=5,net-delay%0.5,delay-ms=1").expect("plan"));
        let obs = Obs::enabled();
        let proxy = NetFaultProxy::bind(upstream, Arc::clone(&plan), obs.clone()).expect("proxy");
        for _ in 0..16 {
            let _ = peer_exchange(proxy.addr(), "GET", "/x", None, &quick());
        }
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("serve.net.injected"),
            Some(proxy.plan().net_fired()),
            "every injected toxic is attributed"
        );
    }
}
