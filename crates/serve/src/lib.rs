#![warn(missing_docs)]
//! # ofd-serve
//!
//! A resilient, zero-dependency HTTP/1.1 service layer over the FastOFD /
//! OFDClean engines — the piece that turns the batch binaries into a
//! long-running process that survives overload, bad requests and
//! restarts:
//!
//! * **Endpoints** — `POST /v1/discover`, `POST /v1/clean`,
//!   `POST /v1/validate` (inputs inline as JSON: CSV text, ontology text,
//!   OFD specs), plus `GET /healthz`, `GET /readyz`, `GET /metrics`
//!   (ofd-obs schema-v1 JSON) and `POST /admin/drain`.
//! * **Admission control** — a bounded queue ([`queue::BoundedQueue`])
//!   feeding a fixed worker pool; each admitted job runs under a
//!   per-request [`ExecGuard`](ofd_core::ExecGuard) deadline derived from
//!   the server budget, started at admission so queue wait counts.
//! * **Load shedding** — 429 + `Retry-After` + `retry_after_ms` backoff
//!   hints when the queue is full or the process RSS crosses a high-water
//!   mark; 503 while draining.
//! * **Circuit breaking** — per-endpoint [`breaker::Breaker`]s open after
//!   N consecutive handler panics, refuse with a cooldown hint, then
//!   half-open a single probe.
//! * **Cooperative cancel** — a disconnect watcher cancels the guard when
//!   the client goes away; the engine stops at its next checkpoint.
//! * **Checkpointed graceful drain** — SIGTERM (or `/admin/drain`)
//!   cancels in-flight jobs to their next snapshot boundary; per-job
//!   [`SnapshotStore`](ofd_core::SnapshotStore) directories (keyed by a
//!   request fingerprint) let a restarted server resume the same request
//!   byte-identically.
//!
//! The soak harness for all of this is `serve_probe` in `ofd-bench`.

pub mod breaker;
pub mod http;
pub mod jobs;
pub mod queue;
pub mod server;

pub use breaker::{Admission, Breaker};
pub use jobs::{BadRequest, Endpoint, JobContext, JobOutcome};
pub use server::{termination_flag, ServeConfig, ServeSummary, Server, SERVE_COUNTERS};
