#![warn(missing_docs)]
//! # ofd-serve
//!
//! A resilient, zero-dependency HTTP/1.1 service layer over the FastOFD /
//! OFDClean engines — the piece that turns the batch binaries into a
//! long-running process that survives overload, bad requests and
//! restarts:
//!
//! * **Endpoints** — `POST /v1/discover`, `POST /v1/clean`,
//!   `POST /v1/validate` (inputs inline as JSON — CSV text, ontology
//!   text, OFD specs — or by `dataset: "name@version"` reference), the
//!   [`catalog`] API under `/v1/datasets`, plus `GET /healthz`,
//!   `GET /readyz` (tri-state: `ok` | `degraded` | `draining`),
//!   `GET /metrics` (ofd-obs schema-v1 JSON) and `POST /admin/drain`.
//! * **Admission control** — a bounded queue ([`queue::BoundedQueue`])
//!   feeding a fixed worker pool; each admitted job runs under a
//!   per-request [`ExecGuard`](ofd_core::ExecGuard) deadline derived from
//!   the server budget, started at admission so queue wait counts.
//! * **Load shedding** — 429 + `Retry-After` + `retry_after_ms` backoff
//!   hints when the queue is full or the process RSS crosses a high-water
//!   mark; 503 while draining.
//! * **Circuit breaking** — per-endpoint [`breaker::Breaker`]s open after
//!   N consecutive handler panics, refuse with a cooldown hint, then
//!   half-open a single probe.
//! * **Cooperative cancel** — a disconnect watcher cancels the guard when
//!   the client goes away; the engine stops at its next checkpoint.
//! * **Checkpointed graceful drain** — SIGTERM (or `/admin/drain`)
//!   cancels in-flight jobs to their next snapshot boundary; per-job
//!   [`SnapshotStore`](ofd_core::SnapshotStore) directories (keyed by a
//!   request fingerprint) let a restarted server resume the same request
//!   byte-identically.
//! * **Dataset catalog** — [`catalog::Catalog`] registers immutable,
//!   append-only dataset versions under `<checkpoint-dir>/catalog`;
//!   requests reference `dataset: "name@version"` instead of re-shipping
//!   rows, parses are interned per version, and the catalog is shared by
//!   every replica pointed at the same directory.
//! * **Fleet mode** — [`router::Router`] fronts N worker processes kept
//!   alive by [`supervisor::Supervisor`] (respawn behind a restart-storm
//!   breaker). Requests are consistent-hash routed by dataset content
//!   fingerprint and fail over to the next replica on connect/5xx
//!   errors; because checkpoints are content-keyed and the root is
//!   shared, the surviving replica **adopts** a dead worker's checkpoint
//!   and resumes mid-level, still byte-identical
//!   (`serve.router.adopted`).
//!
//! The soak harness for all of this is `serve_probe` in `ofd-bench`
//! (`--router` for the fleet soak).

pub mod breaker;
pub mod catalog;
pub mod http;
pub mod jobs;
pub mod netfault;
pub mod peers;
pub mod queue;
pub mod retry;
pub mod router;
pub mod server;
pub mod stream;
pub mod supervisor;

pub use breaker::{Admission, Breaker};
pub use catalog::{content_fingerprint, Catalog, CatalogEntry, CatalogError};
pub use jobs::{BadRequest, Endpoint, JobContext, JobError, JobOutcome};
pub use netfault::{NetFaultProxy, NET_COUNTERS};
pub use peers::{parse_peer_list, PeerTimeouts};
pub use retry::{RetryPolicy, RetrySession, RETRIES_EXHAUSTED};
pub use stream::{StreamSessions, STREAM_COUNTERS};
pub use router::{Fleet, Router, RouterConfig, ROUTER_COUNTERS};
pub use server::{termination_flag, ServeConfig, ServeSummary, Server, SERVE_COUNTERS};
pub use supervisor::{Supervisor, SupervisorConfig, WorkerSpec};
