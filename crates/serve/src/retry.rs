//! One retry discipline for every network path in the fleet.
//!
//! Before this module, three hand-rolled loops each re-invented retries:
//! the router's failover walk, the quorum catalog PUT fan-out, and the
//! peer checkpoint fetch/ship path. They disagreed on backoff shape,
//! deadline handling and give-up conditions — exactly the differences a
//! network-fault soak turns into flakes. [`RetryPolicy`] centralises the
//! three decisions every retry loop must make:
//!
//! * **budget** — how many attempts in total (the first attempt counts);
//! * **backoff** — linear base growth with deterministic jitter (a
//!   seeded hash, never wall-clock randomness, so a pinned-seed chaos
//!   run replays the same sleep schedule);
//! * **deadline clamp** — no sleep ever crosses the caller's deadline,
//!   and a passed deadline ends the session immediately.
//!
//! A connection-refused failure is *free*: nothing is listening, so the
//! next candidate is tried without sleeping — only timeouts, torn
//! replies and 5xx answers consume the backoff budget. Callers that run
//! out of budget count it themselves under `serve.net.retries_exhausted`
//! (pinned by the metrics schema), so every giving-up path in the fleet
//! is attributable from one counter.

use std::time::{Duration, Instant};

/// The counter name every retry caller increments when a session
/// exhausts its budget or deadline without success.
pub const RETRIES_EXHAUSTED: &str = "serve.net.retries_exhausted";

/// SplitMix64 — the same deterministic mixer the fault plan uses, so
/// jitter is a pure function of `(seed, attempt)`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A retry discipline: budget, jittered backoff, deadline clamp.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts allowed, first included (`1` = no retries).
    pub budget: u32,
    /// Base backoff; the sleep before attempt `n+1` grows linearly as
    /// `base * n`, jittered to 50–100% of that.
    pub base_backoff: Duration,
    /// Ceiling on any single sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
    /// Hard deadline: sleeps are clamped to the time remaining, and a
    /// passed deadline exhausts the session.
    pub deadline: Option<Instant>,
}

impl RetryPolicy {
    /// A policy with `budget` attempts and a `base_backoff_ms` linear
    /// backoff, capped at 2 s per sleep, no deadline.
    pub fn new(budget: u32, base_backoff_ms: u64) -> RetryPolicy {
        RetryPolicy {
            budget: budget.max(1),
            base_backoff: Duration::from_millis(base_backoff_ms),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
            deadline: None,
        }
    }

    /// Sets the hard deadline (`None` leaves the session unbounded).
    pub fn deadline(mut self, deadline: Option<Instant>) -> RetryPolicy {
        self.deadline = deadline;
        self
    }

    /// Sets the jitter seed (a pinned-seed soak passes its run seed so
    /// the sleep schedule replays).
    pub fn seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// Starts a retry session (one request / one peer conversation).
    pub fn session(&self) -> RetrySession<'_> {
        RetrySession {
            policy: self,
            failures: 0,
        }
    }

    /// Runs `op` under this policy: attempt, and on `Err` back off and
    /// retry until the budget or deadline runs out. `fast_fail(&e)`
    /// marks errors that skip the sleep (connection refused). Returns
    /// the last error when the session exhausts.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, E>,
        mut fast_fail: impl FnMut(&E) -> bool,
    ) -> Result<T, E> {
        let mut session = self.session();
        loop {
            match op(session.failures) {
                Ok(v) => return Ok(v),
                Err(e) => match session.after_failure(fast_fail(&e)) {
                    Some(sleep) => {
                        if !sleep.is_zero() {
                            std::thread::sleep(sleep);
                        }
                    }
                    None => return Err(e),
                },
            }
        }
    }
}

/// Mutable per-conversation state over a [`RetryPolicy`].
#[derive(Debug)]
pub struct RetrySession<'p> {
    policy: &'p RetryPolicy,
    failures: u32,
}

impl RetrySession<'_> {
    /// Failures recorded so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Records one failed attempt. `Some(sleep)` means another attempt
    /// is allowed after sleeping (zero for `fast_fail` — nothing was
    /// listening, so the next candidate costs nothing); `None` means the
    /// budget or deadline is exhausted and the caller must give up.
    pub fn after_failure(&mut self, fast_fail: bool) -> Option<Duration> {
        self.failures = self.failures.saturating_add(1);
        if self.failures >= self.policy.budget {
            return None;
        }
        let mut backoff = if fast_fail {
            Duration::ZERO
        } else {
            // Linear growth, deterministically jittered to 50–100% so
            // concurrent retriers de-synchronise without wall-clock
            // randomness.
            let raw = self
                .policy
                .base_backoff
                .saturating_mul(self.failures)
                .min(self.policy.max_backoff);
            let jitter = mix64(self.policy.jitter_seed ^ u64::from(self.failures)) % 512;
            raw.mul_f64(0.5 + (jitter as f64) / 1024.0)
        };
        if let Some(deadline) = self.policy.deadline {
            match deadline.checked_duration_since(Instant::now()) {
                Some(remaining) => backoff = backoff.min(remaining),
                None => return None,
            }
        }
        Some(backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_bounds_the_attempts() {
        let policy = RetryPolicy::new(3, 0);
        let mut tried = 0u32;
        let r: Result<(), &str> = policy.run(
            |_| {
                tried += 1;
                Err("nope")
            },
            |_| true,
        );
        assert!(r.is_err());
        assert_eq!(tried, 3, "budget of 3 = exactly 3 attempts");
    }

    #[test]
    fn succeeds_mid_session() {
        let policy = RetryPolicy::new(5, 0);
        let r: Result<u32, &str> = policy.run(
            |attempt| if attempt >= 2 { Ok(attempt) } else { Err("retry") },
            |_| true,
        );
        assert_eq!(r, Ok(2), "third attempt wins");
    }

    #[test]
    fn passed_deadline_exhausts_immediately() {
        let policy = RetryPolicy::new(100, 60_000)
            .deadline(Some(Instant::now() - Duration::from_millis(1)));
        let mut session = policy.session();
        assert_eq!(session.after_failure(false), None, "no sleeping past a dead deadline");
    }

    #[test]
    fn backoff_is_clamped_to_the_remaining_deadline() {
        let policy = RetryPolicy::new(10, 60_000)
            .deadline(Some(Instant::now() + Duration::from_millis(50)));
        let mut session = policy.session();
        let sleep = session.after_failure(false).expect("one retry allowed");
        assert!(
            sleep <= Duration::from_millis(50),
            "a minutes-scale backoff must clamp to the 50 ms deadline, got {sleep:?}"
        );
    }

    #[test]
    fn fast_fail_skips_the_sleep_but_spends_the_budget() {
        let policy = RetryPolicy::new(3, 60_000);
        let mut session = policy.session();
        assert_eq!(session.after_failure(true), Some(Duration::ZERO));
        assert_eq!(session.after_failure(true), Some(Duration::ZERO));
        assert_eq!(session.after_failure(true), None, "budget still bounds fast failures");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let sleeps = |seed: u64| -> Vec<Duration> {
            let policy = RetryPolicy::new(6, 100).seed(seed);
            let mut session = policy.session();
            (0..5).filter_map(|_| session.after_failure(false)).collect()
        };
        assert_eq!(sleeps(7), sleeps(7), "same seed, same sleep schedule");
        assert_ne!(sleeps(7), sleeps(8), "different seed, different jitter");
        for (i, d) in sleeps(7).iter().enumerate() {
            let raw = Duration::from_millis(100).saturating_mul(i as u32 + 1);
            assert!(*d >= raw.mul_f64(0.5) && *d <= raw, "jitter stays in [50%, 100%]: {d:?}");
        }
    }
}
