//! A per-endpoint circuit breaker.
//!
//! The classic three-state machine: **closed** (requests flow; consecutive
//! handler failures are counted), **open** (requests are rejected outright
//! until a cooldown passes — a crashing handler must not take the whole
//! worker pool down with it), **half-open** (exactly one probe request is
//! admitted; its outcome decides between closing the circuit and another
//! cooldown). Only *handler* failures — panics caught by the worker pool —
//! move the breaker; client errors (bad CSV, unparsable OFDs) and guard
//! interrupts do not, since they say nothing about endpoint health.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: State,
    consecutive_failures: u32,
    /// When an open circuit may admit its half-open probe.
    retry_at: Option<Instant>,
}

/// Admission decision from [`Breaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Request may proceed.
    Allowed,
    /// Circuit open (or a half-open probe already in flight); retry after
    /// the given hint.
    Rejected {
        /// Suggested client backoff before retrying.
        retry_after: Duration,
    },
}

/// A circuit breaker guarding one endpoint.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    /// A closed breaker that opens after `threshold` consecutive handler
    /// failures and admits a half-open probe after `cooldown`.
    /// `threshold == 0` disables the breaker entirely.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold,
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: State::Closed,
                consecutive_failures: 0,
                retry_at: None,
            }),
        }
    }

    /// Decides whether a request may proceed right now.
    pub fn admit(&self) -> Admission {
        if self.threshold == 0 {
            return Admission::Allowed;
        }
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            State::Closed => Admission::Allowed,
            State::HalfOpen => Admission::Rejected {
                // A probe is already in flight; its outcome will settle the
                // circuit, so the hint is one cooldown.
                retry_after: self.cooldown,
            },
            State::Open => {
                let retry_at = inner.retry_at.expect("open breaker has retry_at");
                let now = Instant::now();
                if now >= retry_at {
                    inner.state = State::HalfOpen;
                    Admission::Allowed
                } else {
                    Admission::Rejected {
                        retry_after: retry_at - now,
                    }
                }
            }
        }
    }

    /// Records a successful (non-panicking) handler run: closes the
    /// circuit and clears the failure streak.
    pub fn on_success(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.state = State::Closed;
        inner.consecutive_failures = 0;
        inner.retry_at = None;
    }

    /// Records a handler failure (panic). Returns `true` when this failure
    /// opened (or re-opened) the circuit — the caller counts those.
    pub fn on_failure(&self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            // A failed half-open probe re-opens immediately.
            State::HalfOpen => {
                inner.state = State::Open;
                inner.retry_at = Some(Instant::now() + self.cooldown);
                true
            }
            State::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.state = State::Open;
                    inner.retry_at = Some(Instant::now() + self.cooldown);
                    true
                } else {
                    false
                }
            }
            State::Open => false,
        }
    }

    /// Called when an admitted half-open probe never ran (e.g. it was
    /// shed by the admission queue): re-opens the circuit for another
    /// cooldown so the breaker cannot get stuck waiting on a probe whose
    /// outcome will never arrive.
    pub fn probe_aborted(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("breaker lock");
        if inner.state == State::HalfOpen {
            inner.state = State::Open;
            inner.retry_at = Some(Instant::now() + self.cooldown);
        }
    }

    /// Whether the circuit is currently refusing requests.
    pub fn is_open(&self) -> bool {
        self.inner.lock().expect("breaker lock").state != State::Closed
    }

    /// Stable label of the current state — `closed`, `open` or
    /// `half_open` — for `/readyz` summaries and logs.
    pub fn state_label(&self) -> &'static str {
        match self.inner.lock().expect("breaker lock").state {
            State::Closed => "closed",
            State::Open => "open",
            State::HalfOpen => "half_open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = Breaker::new(3, Duration::from_millis(50));
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert!(matches!(b.admit(), Admission::Allowed), "still closed below threshold");
        assert!(b.on_failure(), "third consecutive failure opens");
        assert!(matches!(b.admit(), Admission::Rejected { .. }));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = Breaker::new(2, Duration::from_millis(50));
        b.on_failure();
        b.on_success();
        assert!(!b.on_failure(), "streak restarted after success");
        assert!(matches!(b.admit(), Admission::Allowed));
    }

    #[test]
    fn half_open_admits_one_probe_then_settles() {
        let b = Breaker::new(1, Duration::from_millis(10));
        b.on_failure();
        assert!(matches!(b.admit(), Admission::Rejected { .. }));
        std::thread::sleep(Duration::from_millis(15));
        // Cooldown passed: exactly one probe gets through.
        assert!(matches!(b.admit(), Admission::Allowed));
        assert!(matches!(b.admit(), Admission::Rejected { .. }), "second concurrent probe refused");
        // Probe succeeds → closed again.
        b.on_success();
        assert!(matches!(b.admit(), Admission::Allowed));
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let b = Breaker::new(1, Duration::from_millis(10));
        b.on_failure();
        std::thread::sleep(Duration::from_millis(15));
        assert!(matches!(b.admit(), Admission::Allowed), "half-open probe");
        assert!(b.on_failure(), "probe failure re-opens");
        assert!(matches!(b.admit(), Admission::Rejected { .. }));
    }

    #[test]
    fn aborted_probe_reopens_instead_of_sticking_half_open() {
        let b = Breaker::new(1, Duration::from_millis(10));
        b.on_failure();
        std::thread::sleep(Duration::from_millis(15));
        assert!(matches!(b.admit(), Admission::Allowed), "half-open probe");
        b.probe_aborted();
        assert!(matches!(b.admit(), Admission::Rejected { .. }), "back to open");
        std::thread::sleep(Duration::from_millis(15));
        assert!(matches!(b.admit(), Admission::Allowed), "and recoverable");
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let b = Breaker::new(0, Duration::from_millis(10));
        for _ in 0..100 {
            assert!(!b.on_failure());
        }
        assert!(matches!(b.admit(), Admission::Allowed));
    }

    #[test]
    fn rejection_carries_a_backoff_hint() {
        let b = Breaker::new(1, Duration::from_secs(60));
        b.on_failure();
        match b.admit() {
            Admission::Rejected { retry_after } => {
                assert!(retry_after > Duration::from_secs(1));
            }
            Admission::Allowed => panic!("open breaker admitted"),
        }
    }
}
