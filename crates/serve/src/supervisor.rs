//! Worker-process supervision for the shard router.
//!
//! The router front process does not run engines itself — it spawns N
//! worker processes (each a full [`Server`](crate::Server) behind its
//! own OS-assigned port) and keeps them alive:
//!
//! * each worker is spawned with stdout piped and announces itself with
//!   a `listening on ADDR` banner, the same contract `serve_probe`'s
//!   child mode uses — workers always bind `:0` and report back, so the
//!   fleet never trips over a hard-coded port;
//! * a monitor thread polls the children; a worker that exits (crash,
//!   OOM-kill, SIGKILL) is respawned in place and the slot's address
//!   updated — `serve.router.respawned` counts these;
//! * a **restart-storm breaker** per slot: more than
//!   `max_restarts_in_window` respawns inside `restart_window` puts the
//!   slot in a cooldown instead of burning CPU on a crash loop (a worker
//!   that dies instantly — bad flags, missing binary — would otherwise
//!   respawn thousands of times a second). `serve.router.storm_cooldowns`
//!   counts trips; the slot rejoins the ring after the cooldown.
//!
//! The supervisor deliberately knows nothing about HTTP routing; it owns
//! processes and addresses, and the [`Router`](crate::Router) reads the
//! live address set from it on every request.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ofd_core::Obs;

/// How to launch one worker process. The same spec is reused for every
/// slot and every respawn; workers must print `listening on ADDR` as
/// their first stdout line (with `ADDR` parseable as a socket address,
/// optionally followed by more text).
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Program to execute (usually `current_exe()`).
    pub program: PathBuf,
    /// Arguments, e.g. `["serve", "--addr", "127.0.0.1:0", ...]`.
    pub args: Vec<String>,
}

/// Supervisor knobs; defaults are production-shaped.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Launch recipe shared by all slots.
    pub spec: WorkerSpec,
    /// Number of worker slots.
    pub workers: usize,
    /// How long to wait for a freshly spawned worker's banner before
    /// declaring the spawn failed.
    pub banner_timeout: Duration,
    /// Sliding window for the restart-storm breaker.
    pub restart_window: Duration,
    /// Respawns inside the window that trip the breaker.
    pub max_restarts_in_window: u32,
    /// How long a tripped slot sits out before the next respawn attempt.
    pub storm_cooldown: Duration,
    /// Fixed remote worker addresses appended as extra slots after the
    /// local ones. The supervisor never spawns, reaps, or respawns these
    /// — their lifecycle belongs to another host; the router's prober
    /// decides whether they are routable.
    pub remote: Vec<SocketAddr>,
    /// Metrics handle (`serve.router.respawned`, ...).
    pub obs: Obs,
}

impl SupervisorConfig {
    /// Defaults around a given launch spec.
    pub fn new(spec: WorkerSpec) -> SupervisorConfig {
        SupervisorConfig {
            spec,
            workers: 2,
            banner_timeout: Duration::from_secs(10),
            restart_window: Duration::from_secs(10),
            max_restarts_in_window: 5,
            storm_cooldown: Duration::from_secs(30),
            remote: Vec::new(),
            obs: Obs::enabled(),
        }
    }
}

/// One worker slot's live state.
struct Slot {
    child: Option<Child>,
    addr: Option<SocketAddr>,
    /// Respawn timestamps inside the storm window.
    restarts: VecDeque<Instant>,
    /// Set while the storm breaker holds the slot down.
    cooling_until: Option<Instant>,
    /// Set for slots that front a worker on another host: the address is
    /// fixed, there is no child process, and the monitor leaves the slot
    /// alone — `child: None` here means "not ours to restart", not
    /// "down".
    remote: bool,
}

struct Inner {
    cfg: SupervisorConfig,
    slots: Mutex<Vec<Slot>>,
    stopping: AtomicBool,
}

/// A running fleet of supervised worker processes.
pub struct Supervisor {
    inner: Arc<Inner>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

/// Spawns one worker and scrapes its `listening on ADDR` banner.
fn spawn_worker(spec: &WorkerSpec, banner_timeout: Duration) -> std::io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(&spec.program)
        .args(&spec.args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().ok_or_else(|| {
        std::io::Error::other("worker spawned without a stdout pipe")
    })?;
    // The banner read happens on a side thread so a worker that never
    // prints can be timed out instead of hanging the supervisor.
    let (tx, rx) = mpsc::channel::<std::io::Result<SocketAddr>>();
    std::thread::Builder::new()
        .name("ofd-super-banner".into())
        .spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            let sent = match reader.read_line(&mut line) {
                Ok(0) => Err(std::io::Error::other("worker exited before its banner")),
                Ok(_) => parse_banner(line.trim_end()),
                Err(e) => Err(e),
            };
            let _ = tx.send(sent);
            // Keep draining the pipe so the worker never blocks writing
            // to a full stdout buffer.
            let mut sink = [0u8; 4096];
            let mut reader = reader;
            while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
        })?;
    match rx.recv_timeout(banner_timeout) {
        Ok(Ok(addr)) => Ok((child, addr)),
        Ok(Err(e)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(e)
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::other("worker banner timed out"))
        }
    }
}

/// Extracts the address token from a `listening on ADDR ...` banner
/// (trailing text, like `fastofd serve`'s worker/queue summary, is
/// ignored).
fn parse_banner(line: &str) -> std::io::Result<SocketAddr> {
    line.strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|token| token.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("unexpected worker banner {line:?}")))
}

impl Supervisor {
    /// Spawns the fleet and the monitor thread. Slots whose first spawn
    /// fails start in cooldown rather than failing the whole fleet — the
    /// monitor keeps trying, and a fleet with zero live workers is a
    /// valid (if useless) state the router answers 502 for.
    pub fn start(cfg: SupervisorConfig) -> std::io::Result<Supervisor> {
        let mut slots = Vec::with_capacity(cfg.workers + cfg.remote.len());
        for _ in 0..cfg.workers {
            let slot = match spawn_worker(&cfg.spec, cfg.banner_timeout) {
                Ok((child, addr)) => Slot {
                    child: Some(child),
                    addr: Some(addr),
                    restarts: VecDeque::new(),
                    cooling_until: None,
                    remote: false,
                },
                Err(_) => Slot {
                    child: None,
                    addr: None,
                    restarts: VecDeque::new(),
                    cooling_until: Some(Instant::now() + cfg.storm_cooldown),
                    remote: false,
                },
            };
            slots.push(slot);
        }
        // Remote slots ride after the local ones so slot indices — and
        // with them consistent-hash ring positions — are stable however
        // many local workers spawn successfully.
        for addr in &cfg.remote {
            slots.push(Slot {
                child: None,
                addr: Some(*addr),
                restarts: VecDeque::new(),
                cooling_until: None,
                remote: true,
            });
        }
        let inner = Arc::new(Inner {
            cfg,
            slots: Mutex::new(slots),
            stopping: AtomicBool::new(false),
        });
        let monitor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("ofd-super-monitor".into())
                .spawn(move || monitor_loop(&inner))?
        };
        Ok(Supervisor {
            inner,
            monitor: Mutex::new(Some(monitor)),
        })
    }

    /// Current worker addresses, one entry per slot (`None` while a slot
    /// is down or cooling off). Index order is stable, which is what
    /// keeps consistent-hash routing consistent across respawns.
    pub fn addrs(&self) -> Vec<Option<SocketAddr>> {
        self.inner
            .slots
            .lock()
            .expect("supervisor slots lock")
            .iter()
            .map(|s| s.addr)
            .collect()
    }

    /// Live worker process ids (for chaos harnesses to SIGKILL).
    pub fn pids(&self) -> Vec<Option<u32>> {
        self.inner
            .slots
            .lock()
            .expect("supervisor slots lock")
            .iter()
            .map(|s| s.child.as_ref().map(Child::id))
            .collect()
    }

    /// Hard-kills one worker (the chaos path — SIGKILL on unix). The
    /// monitor notices the exit and respawns the slot.
    pub fn kill_worker(&self, slot: usize) -> bool {
        let mut slots = self.inner.slots.lock().expect("supervisor slots lock");
        match slots.get_mut(slot).and_then(|s| s.child.as_mut()) {
            Some(child) => {
                let _ = child.kill();
                true
            }
            None => false,
        }
    }

    /// Stops the monitor and kills every worker. Workers that should
    /// drain gracefully get their `/admin/drain` from the router before
    /// this is called. Idempotent.
    pub fn stop(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        if let Some(m) = self.monitor.lock().expect("supervisor monitor lock").take() {
            let _ = m.join();
        }
        let mut slots = self.inner.slots.lock().expect("supervisor slots lock");
        for slot in slots.iter_mut() {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.addr = None;
        }
    }
}

fn monitor_loop(inner: &Inner) {
    while !inner.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        let mut slots = inner.slots.lock().expect("supervisor slots lock");
        for slot in slots.iter_mut() {
            if inner.stopping.load(Ordering::SeqCst) {
                return;
            }
            // Remote slots have no child to reap or respawn; the router's
            // probe loop owns their health story.
            if slot.remote {
                continue;
            }
            // Reap an exited child; leave a running one alone.
            if let Some(child) = slot.child.as_mut() {
                match child.try_wait() {
                    Ok(None) => continue,
                    Ok(Some(_)) | Err(_) => {
                        slot.child = None;
                        slot.addr = None;
                    }
                }
            }
            // Slot is down. Storm breaker first.
            let now = Instant::now();
            if let Some(until) = slot.cooling_until {
                if now < until {
                    continue;
                }
                slot.cooling_until = None;
                slot.restarts.clear();
            }
            while let Some(&t) = slot.restarts.front() {
                if now.duration_since(t) > inner.cfg.restart_window {
                    slot.restarts.pop_front();
                } else {
                    break;
                }
            }
            if slot.restarts.len() >= inner.cfg.max_restarts_in_window as usize {
                slot.cooling_until = Some(now + inner.cfg.storm_cooldown);
                inner.cfg.obs.inc("serve.router.storm_cooldowns");
                continue;
            }
            match spawn_worker(&inner.cfg.spec, inner.cfg.banner_timeout) {
                Ok((child, addr)) => {
                    slot.child = Some(child);
                    slot.addr = Some(addr);
                    slot.restarts.push_back(now);
                    inner.cfg.obs.inc("serve.router.respawned");
                }
                Err(_) => {
                    // Spawn itself failed; that counts toward the storm.
                    slot.restarts.push_back(now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake worker: prints a banner and sleeps. `sh` keeps these tests
    /// free of a real server binary (unix-only, like the CI runners).
    #[cfg(unix)]
    fn fake_worker(banner_port: u16, sleep_s: u32) -> WorkerSpec {
        WorkerSpec {
            program: PathBuf::from("/bin/sh"),
            args: vec![
                "-c".into(),
                format!("echo listening on 127.0.0.1:{banner_port}; sleep {sleep_s}"),
            ],
        }
    }

    #[cfg(unix)]
    fn cfg(spec: WorkerSpec, workers: usize) -> SupervisorConfig {
        SupervisorConfig {
            workers,
            banner_timeout: Duration::from_secs(5),
            restart_window: Duration::from_millis(400),
            max_restarts_in_window: 3,
            storm_cooldown: Duration::from_secs(60),
            obs: Obs::enabled(),
            ..SupervisorConfig::new(spec)
        }
    }

    #[test]
    fn banner_parsing_tolerates_trailing_text() {
        assert_eq!(
            parse_banner("listening on 127.0.0.1:8080 (workers=2, queue=64)").unwrap(),
            "127.0.0.1:8080".parse::<SocketAddr>().unwrap()
        );
        assert!(parse_banner("something else").is_err());
        assert!(parse_banner("listening on notanaddr").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn spawns_and_reports_addresses() {
        let s = Supervisor::start(cfg(fake_worker(9001, 30), 2)).expect("start");
        let addrs = s.addrs();
        assert_eq!(addrs.len(), 2);
        assert!(addrs.iter().all(Option::is_some), "both slots live");
        s.stop();
    }

    #[cfg(unix)]
    #[test]
    fn respawns_a_killed_worker() {
        let obs = Obs::enabled();
        let mut c = cfg(fake_worker(9002, 30), 1);
        c.obs = obs.clone();
        let s = Supervisor::start(c).expect("start");
        let first_pid = s.pids()[0].expect("live worker");
        assert!(s.kill_worker(0));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(pid) = s.pids()[0] {
                if pid != first_pid {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "worker never respawned");
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(obs.snapshot().counter("serve.router.respawned").unwrap_or(0) >= 1);
        s.stop();
    }

    #[cfg(unix)]
    #[test]
    fn remote_slots_are_never_spawned_or_respawned() {
        let remote: SocketAddr = "10.1.2.3:7777".parse().unwrap();
        let mut c = cfg(fake_worker(9004, 30), 1);
        c.remote = vec![remote];
        let s = Supervisor::start(c).expect("start");
        let addrs = s.addrs();
        assert_eq!(addrs.len(), 2, "one local slot plus one remote slot");
        assert_eq!(addrs[1], Some(remote));
        assert_eq!(s.pids()[1], None, "remote slot has no child process");
        assert!(!s.kill_worker(1), "nothing local to kill");
        // Give the monitor a few cycles: it must not treat the
        // child-less remote slot as crashed and try to spawn into it.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(s.addrs()[1], Some(remote), "monitor left the remote slot alone");
        assert_eq!(s.pids()[1], None);
        s.stop();
    }

    #[cfg(unix)]
    #[test]
    fn restart_storm_puts_the_slot_in_cooldown() {
        // Workers that exit immediately after their banner crash-loop;
        // the breaker must trip instead of respawning forever.
        let obs = Obs::enabled();
        let mut c = cfg(fake_worker(9003, 0), 1);
        c.obs = obs.clone();
        c.restart_window = Duration::from_secs(10);
        c.max_restarts_in_window = 3;
        let s = Supervisor::start(c).expect("start");
        let deadline = Instant::now() + Duration::from_secs(15);
        while obs.snapshot().counter("serve.router.storm_cooldowns").unwrap_or(0) == 0 {
            assert!(Instant::now() < deadline, "storm breaker never tripped");
            std::thread::sleep(Duration::from_millis(25));
        }
        let respawns = obs.snapshot().counter("serve.router.respawned").unwrap_or(0);
        assert!(
            (1..=4).contains(&respawns),
            "respawns bounded by the storm window, got {respawns}"
        );
        assert_eq!(s.addrs()[0], None, "cooling slot reports no address");
        s.stop();
    }
}
