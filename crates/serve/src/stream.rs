//! Streaming OFD maintenance sessions behind `POST /v1/append` and
//! `POST /v1/retract`.
//!
//! A *session* is the incremental counterpart of a batch `/v1/validate`
//! (or `/v1/discover`) call: the same inputs — CSV text or a catalog
//! reference, ontology, and either an explicit `"ofds"` list or discovery
//! parameters — plus an [`IncrementalChecker`] that absorbs tuple
//! inserts, retractions and cell updates without re-running validation
//! from scratch. Sessions are keyed by a fingerprint of the *resolved*
//! base inputs and Σ configuration, so any replica handed the same
//! request computes the same session id.
//!
//! Durability follows the server's checkpoint discipline: after every
//! applied batch the session saves a snapshot (base fingerprint, Σ spec
//! strings, the normalized edit log) under
//! `<checkpoint-root>/stream-<fp>` via [`SnapshotStore`]. A restarted —
//! or routed-over — replica rebuilds the base relation from the request's
//! own inputs and replays the edit log, adopting the dead sibling's
//! session mid-stream (`resumed_from_seq` in the first response after
//! adoption). The snapshot never stores the CSV: the request that resumes
//! a session necessarily carries the same inputs, because that is what
//! the session key hashes.
//!
//! Conflicts (a stale `"old"` guard on an update, a retract index past
//! the current row count) are client-state errors, not endpoint
//! failures: they map to 409, never move the circuit breaker, and the
//! applied prefix of the batch is persisted before the error returns.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ofd_core::{
    CoreError, Fingerprint, IncrementalChecker, Obs, Ofd, OfdKind, Relation, SenseIndex,
    SnapshotStore,
};
use ofd_datagen::csv;
use ofd_discovery::{DiscoveryOptions, FastOfd};
use ofd_ontology::{parse_ontology, Ontology};
use serde_json::{json, Value};

use crate::catalog::CatalogEntry;
use crate::jobs::{
    field, opt_f64, opt_str, opt_u64, parse_spec_list, required_str, JobContext, JobError,
    JobOutcome,
};

/// Counters owned by the streaming layer, touched at server bind so the
/// metrics schema is stable from the first scrape.
pub const STREAM_COUNTERS: [&str; 10] = [
    "serve.stream.sessions",
    "serve.stream.resumed",
    "serve.stream.edits",
    "serve.stream.conflicts",
    "serve.stream.replay_failed",
    "incremental.inserts",
    "incremental.retracts",
    "incremental.updates",
    "incremental.reverified_classes",
    "incremental.stale_updates",
];

/// In-memory sessions are bounded; beyond this, checkpointed sessions are
/// evicted (they rebuild from their snapshot on next touch). Sessions
/// without a snapshot store are never evicted — dropping them would lose
/// state irrecoverably.
const MAX_RESIDENT_SESSIONS: usize = 64;

/// A resident session plus the logical time of its last touch — the LRU
/// clock is a counter advanced under the table lock, not wall time, so
/// recency stays total-ordered without a syscall.
struct Resident {
    sess: Arc<Mutex<Session>>,
    touched: u64,
}

struct Table {
    entries: HashMap<u64, Resident>,
    clock: u64,
}

/// Live streaming sessions, keyed by base-input fingerprint.
///
/// Lock order: the map mutex is never held while a session mutex is held.
/// Lookups clone the `Arc` out and release the map before locking the
/// session, so edits to different sessions proceed concurrently across
/// the worker pool. Eviction follows the same discipline: the victim is
/// removed from the table first, then its snapshot directory is pruned
/// after the table lock is released.
pub struct StreamSessions {
    map: Mutex<Table>,
    capacity: usize,
}

impl Default for StreamSessions {
    fn default() -> StreamSessions {
        StreamSessions::new()
    }
}

impl StreamSessions {
    /// An empty session table with the default residency bound.
    pub fn new() -> StreamSessions {
        StreamSessions::with_capacity(MAX_RESIDENT_SESSIONS)
    }

    /// An empty session table evicting beyond `capacity` resident
    /// sessions (tests shrink this to exercise eviction cheaply).
    pub fn with_capacity(capacity: usize) -> StreamSessions {
        StreamSessions {
            map: Mutex::new(Table {
                entries: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Number of resident sessions (for tests and readiness detail).
    pub fn len(&self) -> usize {
        self.map.lock().expect("sessions lock").entries.len()
    }

    /// True when no session is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: u64) -> Option<Arc<Mutex<Session>>> {
        let mut table = self.map.lock().expect("sessions lock");
        table.clock += 1;
        let now = table.clock;
        table.entries.get_mut(&key).map(|r| {
            r.touched = now;
            r.sess.clone()
        })
    }

    /// Inserts `built` unless a concurrent open won the race, in which
    /// case the winner is returned and `built` is discarded (both were
    /// constructed from identical inputs, so the states are identical).
    ///
    /// At capacity, the least-recently-touched checkpointed session is
    /// evicted and its snapshot directory pruned to the newest file —
    /// enough to rebuild on next touch, nothing more. Sessions without a
    /// store are never evicted (dropping them would lose state), and the
    /// prune happens outside the table lock so a slow filesystem never
    /// stalls unrelated opens.
    fn insert(&self, key: u64, built: Session) -> Arc<Mutex<Session>> {
        let (sess, evicted) = {
            let mut table = self.map.lock().expect("sessions lock");
            table.clock += 1;
            let now = table.clock;
            let mut evicted = None;
            if table.entries.len() >= self.capacity && !table.entries.contains_key(&key) {
                let victim = table
                    .entries
                    .iter()
                    .filter(|(k, r)| {
                        **k != key
                            && r.sess.try_lock().map(|s| s.store.is_some()).unwrap_or(false)
                    })
                    .min_by_key(|(_, r)| r.touched)
                    .map(|(k, _)| *k);
                if let Some(v) = victim {
                    evicted = table.entries.remove(&v);
                }
            }
            let sess = table
                .entries
                .entry(key)
                .or_insert_with(|| Resident {
                    sess: Arc::new(Mutex::new(built)),
                    touched: now,
                })
                .sess
                .clone();
            (sess, evicted)
        };
        if let Some(resident) = evicted {
            if let Ok(victim) = resident.sess.lock() {
                if let Some(store) = &victim.store {
                    // Keep only the newest snapshot: everything the next
                    // touch needs to rebuild, while older generations stop
                    // accumulating on disk for cold sessions.
                    let _ = store.prune("session", 1);
                }
            }
        }
        sess
    }
}

/// One streaming session: the live relation, its sense index, the
/// maintained checker, and the durable edit log.
struct Session {
    fingerprint: u64,
    rel: Relation,
    onto: Ontology,
    index: SenseIndex,
    theta: Option<usize>,
    /// Σ as re-parseable `"A,B->C"` strings — what the snapshot persists.
    specs: Vec<String>,
    checker: IncrementalChecker,
    /// Normalized ops applied so far, in order — the replay log.
    edits: Vec<Value>,
    /// Snapshot sequence number == batches applied so far.
    seq: u64,
    store: Option<SnapshotStore>,
    /// Set when this in-memory session was rebuilt from a snapshot; taken
    /// by the first response so the router can count the adoption.
    resumed_from: Option<u64>,
}

impl Session {
    fn id(&self) -> String {
        format!("stream-{:016x}", self.fingerprint)
    }

    fn extend_index(&mut self) {
        match self.theta {
            Some(theta) => self.index.extend_inheritance(&self.rel, &self.onto, theta),
            None => self.index.extend_synonym(&self.rel, &self.onto),
        }
    }

    fn snapshot_body(&self) -> Value {
        json!({
            "version": 1u64,
            "fingerprint": format!("{:016x}", self.fingerprint),
            "theta": match self.theta {
                Some(t) => json!(t as u64),
                None => Value::Null,
            },
            "specs": self.specs.clone(),
            "edits": self.edits.clone(),
            "batches": self.seq,
        })
    }

    /// Persists the current edit log. Snapshot failures are soft — the
    /// session stays usable, resume just loses the tail.
    fn persist(&mut self, obs: &Obs) {
        self.seq += 1;
        if let Some(store) = &self.store {
            if store.save("session", self.seq, &self.snapshot_body()).is_ok() {
                let _ = store.prune("session", 2);
            } else {
                obs.inc("serve.stream.snapshot_errors");
            }
        }
    }
}

// ------------------------------------------------------------- edit ops

/// Stats accumulated while applying one batch of ops.
#[derive(Default)]
struct BatchStats {
    applied: usize,
    reverified: usize,
    moved: Vec<(usize, usize)>,
}

/// Applies one normalized op. `live` distinguishes a client batch from a
/// snapshot replay: replay must not bump the per-op counters (the ops
/// were already counted when first applied).
fn apply_op(
    sess: &mut Session,
    op: &Value,
    live: bool,
    obs: &Obs,
    stats: &mut BatchStats,
) -> Result<(), JobError> {
    let kind = op
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| JobError::BadRequest("edit op missing \"op\" tag".into()))?;
    match kind {
        "append" => {
            let cells = op
                .get("cells")
                .and_then(Value::as_array)
                .ok_or_else(|| JobError::BadRequest("append op missing \"cells\" array".into()))?;
            let mut texts = Vec::with_capacity(cells.len());
            for c in cells {
                texts.push(c.as_str().ok_or_else(|| {
                    JobError::BadRequest("append cells must be strings".into())
                })?);
            }
            let row = sess
                .rel
                .push_row(texts.iter().copied())
                .map_err(bad_request)?;
            sess.extend_index();
            let n = sess
                .checker
                .apply_insert(&sess.rel, &sess.index, row)
                .map_err(core_error)?;
            stats.reverified += n;
            if live {
                obs.inc("incremental.inserts");
                obs.add("incremental.reverified_classes", n as u64);
            }
        }
        "retract" => {
            let row = op
                .get("row")
                .and_then(Value::as_u64)
                .ok_or_else(|| JobError::BadRequest("retract op missing \"row\" index".into()))?
                as usize;
            let out = sess
                .checker
                .apply_retract(&mut sess.rel, &sess.index, row)
                .map_err(core_error)?;
            stats.reverified += out.reverified;
            if let Some(from) = out.moved_from {
                stats.moved.push((from, row));
            }
            if live {
                obs.inc("incremental.retracts");
                obs.add("incremental.reverified_classes", out.reverified as u64);
            }
        }
        "update" => {
            let row = op
                .get("row")
                .and_then(Value::as_u64)
                .ok_or_else(|| JobError::BadRequest("update op missing \"row\" index".into()))?
                as usize;
            let attr_name = op
                .get("attr")
                .and_then(Value::as_str)
                .ok_or_else(|| JobError::BadRequest("update op missing \"attr\" name".into()))?;
            let value = op
                .get("value")
                .and_then(Value::as_str)
                .ok_or_else(|| JobError::BadRequest("update op missing \"value\"".into()))?;
            let attr = sess.rel.schema().attr(attr_name).map_err(bad_request)?;
            // Antecedent cells key the delta partitions: changing one
            // moves the tuple between equivalence classes, which the
            // update path does not model (the paper's repair scope only
            // edits consequents). Model it as retract + append instead.
            if sess.checker.sigma().iter().any(|o| o.lhs.contains(attr)) {
                return Err(JobError::BadRequest(format!(
                    "attribute {attr_name:?} is an OFD antecedent; retract and re-append the row instead of updating it"
                )));
            }
            if row >= sess.rel.n_rows() {
                return Err(conflict(
                    obs,
                    live,
                    format!("update row {row} is past the current {} rows", sess.rel.n_rows()),
                ));
            }
            // The client's optimistic-concurrency guard: when the request
            // names the value it believes it is replacing, a mismatch
            // means its view of the session is stale.
            if live {
                if let Some(expected) = op.get("old").and_then(Value::as_str) {
                    let actual = sess.rel.text(row, attr);
                    if actual != expected {
                        obs.inc("incremental.stale_updates");
                        return Err(conflict(
                            obs,
                            live,
                            format!(
                                "stale update at row {row}, {attr_name}: expected {expected:?}, session holds {actual:?}"
                            ),
                        ));
                    }
                }
            }
            let old = sess.rel.value(row, attr);
            let new = sess.rel.set(row, attr, value).map_err(core_error)?;
            sess.extend_index();
            let n = sess
                .checker
                .apply_update(&sess.index, row, attr, old, new)
                .map_err(core_error)?;
            stats.reverified += n;
            if live {
                obs.inc("incremental.updates");
                obs.add("incremental.reverified_classes", n as u64);
            }
        }
        other => {
            return Err(JobError::BadRequest(format!(
                "unknown edit op {other:?}; expected append | retract | update"
            )))
        }
    }
    stats.applied += 1;
    if live {
        obs.inc("serve.stream.edits");
    }
    Ok(())
}

fn bad_request(e: CoreError) -> JobError {
    JobError::BadRequest(e.to_string())
}

/// Maps engine errors at the session boundary: desync errors are 409, the
/// rest are malformed requests.
fn core_error(e: CoreError) -> JobError {
    match e {
        CoreError::StaleUpdate { .. } | CoreError::RowOutOfBounds { .. } => {
            JobError::Conflict(e.to_string())
        }
        other => JobError::BadRequest(other.to_string()),
    }
}

fn conflict(obs: &Obs, live: bool, msg: String) -> JobError {
    if live {
        obs.inc("serve.stream.conflicts");
    }
    JobError::Conflict(msg)
}

// -------------------------------------------------------------- sessions

fn spec_string(ofd: &Ofd, schema: &ofd_core::Schema) -> String {
    let lhs: Vec<&str> = ofd.lhs.iter().map(|a| schema.name(a)).collect();
    format!("{}->{}", lhs.join(","), schema.name(ofd.rhs))
}

/// The request's base inputs, *resolved but not parsed*: the edit hot
/// path (a resident session absorbing a one-row batch) must never pay a
/// full CSV parse, so parsing is deferred to [`BaseRef::materialize`],
/// which only runs when a session is actually built or rebuilt.
struct BaseRef<'a> {
    key: u64,
    /// `(csv, ontology)` texts for inline requests.
    inline: Option<(&'a str, &'a str)>,
    /// The interned catalog entry for `dataset: "name@version"` requests.
    entry: Option<Arc<CatalogEntry>>,
}

impl BaseRef<'_> {
    fn csv_text(&self) -> &str {
        match (&self.entry, self.inline) {
            (Some(e), _) => &e.csv,
            (None, Some((csv, _))) => csv,
            (None, None) => unreachable!("resolve_base always sets one source"),
        }
    }

    fn onto_text(&self) -> &str {
        match (&self.entry, self.inline) {
            (Some(e), _) => &e.ontology,
            (None, Some((_, onto))) => onto,
            (None, None) => unreachable!("resolve_base always sets one source"),
        }
    }

    /// `"name@version"` echo for responses; `Null` for inline inputs.
    fn dataset_field(&self) -> Value {
        match &self.entry {
            Some(e) => json!(format!("{}@{}", e.name, e.version)),
            None => Value::Null,
        }
    }

    /// Parses (or clones the interned parse of) the base relation and
    /// ontology — the one expensive step, paid only at session build.
    fn materialize(&self) -> Result<(Relation, Ontology), JobError> {
        if let Some(e) = &self.entry {
            return Ok((e.relation.clone(), e.ontology_parsed.clone()));
        }
        let (csv_text, onto_text) = self.inline.expect("resolve_base always sets one source");
        let rel = csv::read_csv(csv_text)
            .map_err(|e| JobError::BadRequest(format!("csv: {e}")))?;
        let onto = if onto_text.is_empty() {
            Ontology::empty()
        } else {
            parse_ontology(onto_text)
                .map_err(|e| JobError::BadRequest(format!("ontology: {e}")))?
        };
        Ok((rel, onto))
    }
}

/// Resolves the base inputs and computes the session key: a fingerprint
/// of the resolved texts and the Σ configuration. Resolved content only —
/// a session opened inline and touched later by `dataset: "name@version"`
/// reference is the same session, on any replica.
fn resolve_base<'a>(body: &'a Value, ctx: &JobContext) -> Result<BaseRef<'a>, JobError> {
    let mut base = if let Some(reference) = opt_str(body, "dataset")? {
        if field(body, "csv").is_some() {
            return Err(JobError::BadRequest(
                "request carries both \"dataset\" and inline \"csv\"; pick one".into(),
            ));
        }
        let catalog = ctx.catalog.as_ref().ok_or_else(|| {
            JobError::BadRequest(
                "no dataset catalog on this server (start it with --checkpoint-dir)".into(),
            )
        })?;
        let entry = catalog
            .resolve(reference)
            .map_err(|e| JobError::BadRequest(format!("dataset: {}", e.message())))?;
        BaseRef {
            key: 0,
            inline: None,
            entry: Some(entry),
        }
    } else {
        let csv_text = required_str(body, "csv")?;
        let onto_text = opt_str(body, "ontology")?.unwrap_or("");
        BaseRef {
            key: 0,
            inline: Some((csv_text, onto_text)),
            entry: None,
        }
    };
    let mut fp = Fingerprint::new();
    fp.update_str("stream");
    fp.update_str(base.csv_text());
    fp.update_str(base.onto_text());
    fp.update_u64(opt_u64(body, "theta")?.map_or(u64::MAX, |t| t.wrapping_add(1)));
    if let Some(specs) = field(body, "ofds").and_then(Value::as_array) {
        fp.update_str("explicit");
        for spec in specs {
            fp.update_str(spec.as_str().unwrap_or(""));
        }
    } else {
        fp.update_str("discover");
        fp.update_u64(opt_f64(body, "kappa")?.unwrap_or(-1.0).to_bits());
        fp.update_u64(opt_u64(body, "max_level")?.map_or(u64::MAX, |v| v.wrapping_add(1)));
    }
    base.key = fp.finish();
    Ok(base)
}

fn build_index(rel: &Relation, onto: &Ontology, theta: Option<usize>) -> SenseIndex {
    match theta {
        Some(theta) => SenseIndex::inheritance(rel, onto, theta),
        None => SenseIndex::synonym(rel, onto),
    }
}

/// How a session open resolved.
enum Opened {
    Ready(Arc<Mutex<Session>>),
    /// Discovery-mode open tripped the guard before Σ was complete: the
    /// caller gets a sound `incomplete` reply and no session is created
    /// (a partial Σ must never be frozen into a session).
    Incomplete(Value, JobOutcome),
}

/// Finds or builds the session for `body`: resident map first, then the
/// snapshot (replica adoption / restart), then a fresh build.
fn open_session(
    body: &Value,
    ctx: &JobContext,
    endpoint: &str,
    base: &BaseRef<'_>,
) -> Result<Opened, JobError> {
    let key = base.key;
    if let Some(sess) = ctx.sessions.get(key) {
        return Ok(Opened::Ready(sess));
    }

    let store = ctx.checkpoint_root.as_ref().map(|root| {
        let mut s = SnapshotStore::new(root.join(format!("stream-{key:016x}")));
        if ctx.faults.is_active() {
            s = s.with_faults(ctx.faults.clone());
        }
        s
    });

    // Adoption path: a snapshot left by this process before a restart, or
    // by a dead sibling replica sharing the checkpoint root. When the
    // local directory is empty and the fleet spans filesystems, the dead
    // owner's edit log is shipped over from whichever peer holds it.
    if let Some(store) = &store {
        let mut loaded = store.load_latest("session").ok().flatten();
        if loaded.is_none()
            && !ctx.peers.is_empty()
            && crate::peers::fetch_and_install(
                &ctx.peers,
                &format!("/v1/streams/{key:016x}/snapshot"),
                store,
                &ctx.peer_timeouts,
            ) > 0
        {
            ctx.obs.inc("serve.ship.fetched");
            loaded = store.load_latest("session").ok().flatten();
        }
        if let Some(loaded) = loaded {
            match rebuild(ctx, base, &loaded.body) {
                Ok(mut sess) => {
                    ctx.obs.inc("serve.stream.resumed");
                    sess.store = store.clone().into();
                    sess.resumed_from = Some(loaded.seq);
                    sess.seq = loaded.seq;
                    return Ok(Opened::Ready(ctx.sessions.insert(key, sess)));
                }
                Err(_) => ctx.obs.inc("serve.stream.replay_failed"),
            }
        }
    }

    // Fresh build. Σ comes from the request's "ofds" list, or from a
    // discovery run over the base relation when none is given.
    let theta = opt_u64(body, "theta").map_err(JobError::from)?.map(|t| t as usize);
    let (rel, onto) = base.materialize()?;
    let specs: Vec<String> = match field(body, "ofds").and_then(Value::as_array) {
        Some(raw) => {
            let mut strings = Vec::with_capacity(raw.len());
            for s in raw {
                strings.push(
                    s.as_str()
                        .ok_or_else(|| JobError::BadRequest("\"ofds\" entries must be strings".into()))?,
                );
            }
            // Validate now so a bad spec is a 400 at open, then keep the
            // normalized strings for the snapshot.
            parse_spec_list(&strings, theta, rel.schema()).map_err(JobError::from)?;
            strings.iter().map(|s| s.to_string()).collect()
        }
        None => {
            let mut opts = DiscoveryOptions::new()
                .guard(ctx.guard.clone())
                .obs(ctx.obs.clone())
                .faults(ctx.faults.clone());
            if let Some(kappa) = opt_f64(body, "kappa").map_err(JobError::from)? {
                if !(0.0..=1.0).contains(&kappa) || kappa == 0.0 {
                    return Err(JobError::BadRequest("\"kappa\" must be in (0, 1]".into()));
                }
                opts = opts.min_support(kappa);
            }
            if let Some(theta) = theta {
                opts = opts.kind(OfdKind::Inheritance { theta });
            }
            if let Some(level) = opt_u64(body, "max_level").map_err(JobError::from)? {
                opts = opts.max_level(level as usize);
            }
            let out = FastOfd::new(&rel, &onto).options(opts).run();
            if !out.complete {
                let value = json!({
                    "endpoint": endpoint,
                    "status": "incomplete",
                    "interrupt": match out.interrupt {
                        Some(i) => json!(i.label()),
                        None => Value::Null,
                    },
                    "dataset": base.dataset_field(),
                    "session": Value::Null,
                    "detail": "discovery interrupted before Σ was complete; no session opened",
                });
                let outcome = JobOutcome {
                    incomplete: true,
                    resumed: false,
                    interrupt: out.interrupt,
                };
                return Ok(Opened::Incomplete(value, outcome));
            }
            out.ofds
                .iter()
                .map(|d| spec_string(&d.ofd, rel.schema()))
                .collect()
        }
    };

    let sigma = if specs.is_empty() {
        Vec::new()
    } else {
        let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
        parse_spec_list(&refs, theta, rel.schema()).map_err(JobError::from)?
    };
    let index = build_index(&rel, &onto, theta);
    let checker = IncrementalChecker::new(&rel, &index, &sigma);
    let sess = Session {
        fingerprint: key,
        rel,
        onto,
        index,
        theta,
        specs,
        checker,
        edits: Vec::new(),
        seq: 0,
        store,
        resumed_from: None,
    };
    ctx.obs.inc("serve.stream.sessions");
    // Seed snapshot: persists Σ so a resume never re-runs discovery.
    if let Some(store) = &sess.store {
        let _ = store.save("session", 0, &sess.snapshot_body());
    }
    Ok(Opened::Ready(ctx.sessions.insert(key, sess)))
}

/// Rebuilds a session from its snapshot: base relation from the request's
/// own inputs, Σ from the persisted spec strings, state by replaying the
/// edit log. Any replay failure poisons the whole rebuild — the caller
/// falls back to a fresh session.
fn rebuild(ctx: &JobContext, base: &BaseRef<'_>, snap: &Value) -> Result<Session, JobError> {
    if snap.get("version").and_then(Value::as_u64) != Some(1) {
        return Err(JobError::BadRequest("unknown session snapshot version".into()));
    }
    let theta = snap.get("theta").and_then(Value::as_u64).map(|t| t as usize);
    let specs: Vec<String> = snap
        .get("specs")
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let (rel, onto) = base.materialize()?;
    let sigma = if specs.is_empty() {
        Vec::new()
    } else {
        let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
        parse_spec_list(&refs, theta, rel.schema()).map_err(JobError::from)?
    };
    let index = build_index(&rel, &onto, theta);
    let checker = IncrementalChecker::new(&rel, &index, &sigma);
    let mut sess = Session {
        fingerprint: base.key,
        rel,
        onto,
        index,
        theta,
        specs,
        checker,
        edits: Vec::new(),
        seq: 0,
        store: None,
        resumed_from: None,
    };
    let edits = snap
        .get("edits")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let mut stats = BatchStats::default();
    for op in &edits {
        apply_op(&mut sess, op, false, &ctx.obs, &mut stats)?;
        sess.edits.push(op.clone());
    }
    Ok(sess)
}

// -------------------------------------------------------------- handlers

/// Normalizes an `/v1/append` body into edit ops: `"rows"` (arrays of
/// cell strings) become append ops, `"updates"` become update ops, in
/// that order.
fn append_ops(body: &Value) -> Result<Vec<Value>, JobError> {
    let mut ops = Vec::new();
    if let Some(rows) = field(body, "rows") {
        let rows = rows
            .as_array()
            .ok_or_else(|| JobError::BadRequest("\"rows\" must be an array of rows".into()))?;
        for row in rows {
            if row.as_array().is_none() {
                return Err(JobError::BadRequest(
                    "\"rows\" entries must be arrays of cell strings".into(),
                ));
            }
            ops.push(json!({"op": "append", "cells": row.clone()}));
        }
    }
    if let Some(updates) = field(body, "updates") {
        let updates = updates
            .as_array()
            .ok_or_else(|| JobError::BadRequest("\"updates\" must be an array".into()))?;
        for u in updates {
            let mut op = json!({
                "op": "update",
                "row": u.get("row").cloned().unwrap_or(Value::Null),
                "attr": u.get("attr").cloned().unwrap_or(Value::Null),
                "value": u.get("value").cloned().unwrap_or(Value::Null),
            });
            if let Some(old) = u.get("old").filter(|v| !v.is_null()) {
                if let Value::Object(fields) = &mut op {
                    fields.push(("old".into(), old.clone()));
                }
            }
            ops.push(op);
        }
    }
    if ops.is_empty() {
        return Err(JobError::BadRequest(
            "append request carries neither \"rows\" nor \"updates\"".into(),
        ));
    }
    Ok(ops)
}

/// Normalizes a `/v1/retract` body: `"rows"` is a list of row indexes,
/// applied in order against the session's *current* state — swap-remove
/// renames mean later indexes in the same batch see the post-removal
/// layout (the response's `moved_rows` reports every rename).
fn retract_ops(body: &Value) -> Result<Vec<Value>, JobError> {
    let rows = field(body, "rows")
        .and_then(Value::as_array)
        .ok_or_else(|| JobError::BadRequest("retract requires a \"rows\" index array".into()))?;
    if rows.is_empty() {
        return Err(JobError::BadRequest("\"rows\" must not be empty".into()));
    }
    let mut ops = Vec::with_capacity(rows.len());
    for r in rows {
        let row = r
            .as_u64()
            .ok_or_else(|| JobError::BadRequest("\"rows\" entries must be row indexes".into()))?;
        ops.push(json!({"op": "retract", "row": row}));
    }
    Ok(ops)
}

/// `POST /v1/append`: insert rows and/or update cells in a session.
pub(crate) fn append(body: &Value, ctx: &JobContext) -> Result<(Value, JobOutcome), JobError> {
    run_batch(body, ctx, "append", append_ops(body)?)
}

/// `POST /v1/retract`: remove rows from a session.
pub(crate) fn retract(body: &Value, ctx: &JobContext) -> Result<(Value, JobOutcome), JobError> {
    run_batch(body, ctx, "retract", retract_ops(body)?)
}

fn run_batch(
    body: &Value,
    ctx: &JobContext,
    endpoint: &str,
    ops: Vec<Value>,
) -> Result<(Value, JobOutcome), JobError> {
    let base = resolve_base(body, ctx)?;
    let sess = match open_session(body, ctx, endpoint, &base)? {
        Opened::Ready(s) => s,
        Opened::Incomplete(value, outcome) => return Ok((value, outcome)),
    };
    let mut sess = sess.lock().expect("session lock");
    let mut stats = BatchStats::default();
    let mut outcome = JobOutcome {
        resumed: sess.resumed_from.is_some(),
        ..JobOutcome::default()
    };
    let mut failure: Option<JobError> = None;
    for op in &ops {
        // Checkpoint boundary between ops: drain or disconnect stops the
        // batch with the applied prefix intact and persisted.
        if let Err(i) = ctx.guard.check() {
            outcome.incomplete = true;
            outcome.interrupt = Some(i);
            break;
        }
        match apply_op(&mut sess, op, true, &ctx.obs, &mut stats) {
            Ok(()) => sess.edits.push(op.clone()),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    if stats.applied > 0 {
        sess.persist(&ctx.obs);
    }
    if let Some(e) = failure {
        // The applied prefix is durable; the client refreshes and retries
        // the remainder.
        return Err(e);
    }

    let schema = sess.rel.schema();
    let per_ofd = sess.checker.per_ofd_violations();
    let sigma: Vec<Value> = sess
        .checker
        .sigma()
        .iter()
        .zip(&per_ofd)
        .map(|(ofd, &v)| {
            json!({
                "ofd": ofd.display(schema),
                "satisfied": v == 0,
                "violating_classes": v as u64,
            })
        })
        .collect();
    let moved: Vec<Value> = stats
        .moved
        .iter()
        .map(|&(from, to)| json!({"from": from as u64, "to": to as u64}))
        .collect();
    let resumed_from = sess.resumed_from.take();
    let value = json!({
        "endpoint": endpoint,
        "status": if outcome.incomplete { "incomplete" } else { "complete" },
        "interrupt": match outcome.interrupt {
            Some(i) => json!(i.label()),
            None => Value::Null,
        },
        "dataset": base.dataset_field(),
        "session": sess.id(),
        "seq": sess.seq,
        "applied": stats.applied as u64,
        "n_rows": sess.rel.n_rows() as u64,
        "violations": sess.checker.violation_count() as u64,
        "all_satisfied": sess.checker.is_satisfied(),
        "sigma": Value::Array(sigma),
        "reverified_classes": stats.reverified as u64,
        "moved_rows": Value::Array(moved),
        "resumed_from_seq": match resumed_from {
            Some(s) => json!(s),
            None => Value::Null,
        },
    });
    Ok((value, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofd_core::{ExecGuard, FaultPlan, Validator};
    use ofd_datagen::csv;

    fn ctx() -> JobContext {
        JobContext {
            guard: ExecGuard::unlimited(),
            obs: Obs::enabled(),
            faults: FaultPlan::none(),
            checkpoint_root: None,
            catalog: None,
            sessions: Arc::new(StreamSessions::new()),
            peers: Vec::new(),
            peer_timeouts: crate::peers::PeerTimeouts::default(),
        }
    }

    fn sample_body() -> (Value, ofd_datagen::Dataset) {
        let ds = ofd_datagen::clinical(&ofd_datagen::PresetConfig {
            n_rows: 80,
            n_attrs: 5,
            n_ofds: 2,
            seed: 11,
            ..ofd_datagen::PresetConfig::default()
        });
        let specs: Vec<String> = ds
            .ofds
            .iter()
            .map(|o| spec_string(o, ds.clean.schema()))
            .collect();
        let body = json!({
            "csv": csv::write_csv(&ds.clean),
            "ontology": ofd_ontology::write_ontology(&ds.full_ontology),
            "ofds": specs,
        });
        (body, ds)
    }

    fn with_ops(base: &Value, extra: &[(&str, Value)]) -> Value {
        let mut body = base.clone();
        if let Value::Object(fields) = &mut body {
            for (k, v) in extra {
                fields.push(((*k).into(), v.clone()));
            }
        }
        body
    }

    #[test]
    fn append_then_retract_round_trips_and_matches_full_validation() {
        let (base, ds) = sample_body();
        let c = ctx();
        let row: Vec<String> = ds.clean.row_texts(0).iter().map(|s| s.to_string()).collect();
        let body = with_ops(&base, &[("rows", json!([row]))]);
        let (v, outcome) = append(&body, &c).expect("append");
        assert!(!outcome.incomplete);
        assert_eq!(v.get("applied").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("n_rows").and_then(Value::as_u64),
            Some(ds.clean.n_rows() as u64 + 1)
        );

        // Differential check: incremental violations == from-scratch.
        let mut rel = ds.clean.clone();
        let dup: Vec<String> = ds.clean.row_texts(0).iter().map(|s| s.to_string()).collect();
        rel.push_row(dup.iter().map(String::as_str)).expect("push");
        let validator = Validator::new(&rel, &ds.full_ontology);
        let expect: usize = ds.ofds.iter().map(|o| validator.check(o).violation_count()).sum();
        assert_eq!(
            v.get("violations").and_then(Value::as_u64),
            Some(expect as u64)
        );

        let retract_body = with_ops(&base, &[("rows", json!([ds.clean.n_rows()]))]);
        let (v2, _) = retract(&retract_body, &c).expect("retract");
        assert_eq!(
            v2.get("n_rows").and_then(Value::as_u64),
            Some(ds.clean.n_rows() as u64)
        );
        let validator = Validator::new(&ds.clean, &ds.full_ontology);
        let expect: usize = ds.ofds.iter().map(|o| validator.check(o).violation_count()).sum();
        assert_eq!(
            v2.get("violations").and_then(Value::as_u64),
            Some(expect as u64)
        );
    }

    #[test]
    fn stale_old_guard_is_a_conflict_and_keeps_the_session_usable() {
        let (base, ds) = sample_body();
        let c = ctx();
        let attr = ds.clean.schema().name(ds.ofds[0].rhs).to_string();
        let body = with_ops(
            &base,
            &[(
                "updates",
                json!([{"row": 0, "attr": attr, "value": "whatever", "old": "not-the-real-value"}]),
            )],
        );
        match append(&body, &c) {
            Err(JobError::Conflict(msg)) => assert!(msg.contains("stale"), "actual: {msg}"),
            other => panic!("expected conflict, got {other:?}"),
        }
        let snap = c.obs.snapshot();
        assert_eq!(snap.counter("serve.stream.conflicts"), Some(1));
        assert_eq!(snap.counter("incremental.stale_updates"), Some(1));

        // The failed op must not have corrupted the session: a correct
        // update with the real old value still applies.
        let real_old = ds.clean.text(0, ds.ofds[0].rhs).to_string();
        let attr = ds.clean.schema().name(ds.ofds[0].rhs).to_string();
        let body = with_ops(
            &base,
            &[(
                "updates",
                json!([{"row": 0, "attr": attr, "value": real_old.clone(), "old": real_old}]),
            )],
        );
        let (v, _) = append(&body, &c).expect("no-op update");
        assert_eq!(v.get("applied").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn antecedent_updates_are_rejected_as_bad_requests() {
        let (base, ds) = sample_body();
        let c = ctx();
        let lhs_attr = ds.ofds[0].lhs.iter().next().expect("planted lhs");
        let attr = ds.clean.schema().name(lhs_attr).to_string();
        let body = with_ops(
            &base,
            &[("updates", json!([{"row": 0, "attr": attr, "value": "x"}]))],
        );
        match append(&body, &c) {
            Err(JobError::BadRequest(msg)) => {
                assert!(msg.contains("antecedent"), "actual: {msg}")
            }
            other => panic!("expected bad request, got {other:?}"),
        }
    }

    #[test]
    fn retract_past_the_end_is_a_conflict() {
        let (base, ds) = sample_body();
        let c = ctx();
        let body = with_ops(&base, &[("rows", json!([ds.clean.n_rows() + 5]))]);
        match retract(&body, &c) {
            Err(JobError::Conflict(msg)) => assert!(msg.contains("out of bounds"), "actual: {msg}"),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn empty_batches_and_bad_cells_are_bad_requests() {
        let (base, _) = sample_body();
        let c = ctx();
        match append(&base, &c) {
            Err(JobError::BadRequest(msg)) => assert!(msg.contains("neither")),
            other => panic!("expected bad request, got {other:?}"),
        }
        let body = with_ops(&base, &[("rows", json!([[1, 2, 3]]))]);
        match append(&body, &c) {
            Err(JobError::BadRequest(msg)) => assert!(msg.contains("strings")),
            other => panic!("expected bad request, got {other:?}"),
        }
        let body = with_ops(&base, &[("rows", json!([["just-one-cell"]]))]);
        match append(&body, &c) {
            Err(JobError::BadRequest(msg)) => {
                assert!(msg.contains("schema has"), "actual: {msg}")
            }
            other => panic!("expected bad request, got {other:?}"),
        }
    }

    #[test]
    fn sessions_survive_eviction_via_snapshot_resume() {
        let tmp = std::env::temp_dir().join("ofd-stream-resume-test");
        let _ = std::fs::remove_dir_all(&tmp);
        let (base, ds) = sample_body();
        let mut c = ctx();
        c.checkpoint_root = Some(tmp.clone());
        let row: Vec<String> = ds.clean.row_texts(3).iter().map(|s| s.to_string()).collect();
        let body = with_ops(&base, &[("rows", json!([row]))]);
        let (v1, _) = append(&body, &c).expect("append");
        assert_eq!(v1.get("resumed_from_seq").and_then(Value::as_u64), None);

        // Simulate a restart or a sibling replica: fresh session table,
        // same checkpoint root.
        let mut c2 = ctx();
        c2.checkpoint_root = Some(tmp.clone());
        let row2: Vec<String> = ds.clean.row_texts(4).iter().map(|s| s.to_string()).collect();
        let body2 = with_ops(&base, &[("rows", json!([row2]))]);
        let (v2, outcome2) = append(&body2, &c2).expect("resumed append");
        assert!(outcome2.resumed, "adopted from snapshot");
        assert_eq!(v2.get("resumed_from_seq").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v2.get("n_rows").and_then(Value::as_u64),
            Some(ds.clean.n_rows() as u64 + 2),
            "the first batch's row survived the restart"
        );
        assert_eq!(
            c2.obs.snapshot().counter("serve.stream.resumed"),
            Some(1)
        );

        // Final state must equal a from-scratch build over both edits.
        let mut rel = ds.clean.clone();
        for r in [3usize, 4] {
            let cells: Vec<String> = ds.clean.row_texts(r).iter().map(|s| s.to_string()).collect();
            rel.push_row(cells.iter().map(String::as_str)).expect("push");
        }
        let validator = Validator::new(&rel, &ds.full_ontology);
        let expect: usize = ds.ofds.iter().map(|o| validator.check(o).violation_count()).sum();
        assert_eq!(v2.get("violations").and_then(Value::as_u64), Some(expect as u64));
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn lru_eviction_prunes_the_victims_snapshot_directory() {
        let tmp = std::env::temp_dir().join("ofd-stream-evict-prune-test");
        let _ = std::fs::remove_dir_all(&tmp);
        let (base_a, ds) = sample_body();
        let mut c = ctx();
        c.checkpoint_root = Some(tmp.clone());
        c.sessions = Arc::new(StreamSessions::with_capacity(1));

        // Two batches leave two snapshot generations on disk for A.
        for r in [3usize, 4] {
            let row: Vec<String> = ds.clean.row_texts(r).iter().map(|s| s.to_string()).collect();
            let body = with_ops(&base_a, &[("rows", json!([row]))]);
            append(&body, &c).expect("append to A");
        }
        let dir_a = std::fs::read_dir(&tmp)
            .expect("root")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("stream-"))
            })
            .expect("session A directory");
        let ckpts = |dir: &std::path::Path| -> Vec<String> {
            let mut names: Vec<String> = std::fs::read_dir(dir)
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .map(|e| e.file_name().to_string_lossy().into_owned())
                        .collect()
                })
                .unwrap_or_default();
            names.sort();
            names
        };
        assert_eq!(ckpts(&dir_a).len(), 2, "persist keeps the last two generations");

        // A second session at capacity 1 evicts A; the victim's directory
        // is pruned down to the single newest snapshot.
        let ds_b = ofd_datagen::clinical(&ofd_datagen::PresetConfig {
            n_rows: 60,
            n_attrs: 5,
            n_ofds: 2,
            seed: 12,
            ..ofd_datagen::PresetConfig::default()
        });
        let specs_b: Vec<String> = ds_b
            .ofds
            .iter()
            .map(|o| spec_string(o, ds_b.clean.schema()))
            .collect();
        let base_b = json!({
            "csv": csv::write_csv(&ds_b.clean),
            "ontology": ofd_ontology::write_ontology(&ds_b.full_ontology),
            "ofds": specs_b,
        });
        let row_b: Vec<String> = ds_b.clean.row_texts(0).iter().map(|s| s.to_string()).collect();
        let body_b = with_ops(&base_b, &[("rows", json!([row_b]))]);
        append(&body_b, &c).expect("append to B");
        assert_eq!(c.sessions.len(), 1, "capacity-1 table holds only session B");
        assert_eq!(
            ckpts(&dir_a),
            vec!["session.000002.ckpt".to_string()],
            "victim pruned to its newest snapshot"
        );

        // A's next touch rebuilds from the surviving snapshot — eviction
        // cleaned the disk without losing state.
        let row: Vec<String> = ds.clean.row_texts(5).iter().map(|s| s.to_string()).collect();
        let body = with_ops(&base_a, &[("rows", json!([row]))]);
        let (v, outcome) = append(&body, &c).expect("resumed append to A");
        assert!(outcome.resumed, "A rebuilt from its pruned-but-present snapshot");
        assert_eq!(v.get("resumed_from_seq").and_then(Value::as_u64), Some(2));
        assert_eq!(
            v.get("n_rows").and_then(Value::as_u64),
            Some(ds.clean.n_rows() as u64 + 3)
        );
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn discovery_mode_opens_a_session_with_the_discovered_sigma() {
        let (base, _ds) = sample_body();
        let c = ctx();
        let mut body = base.clone();
        if let Value::Object(fields) = &mut body {
            fields.retain(|(k, _)| k != "ofds");
        }
        let body = with_ops(&body, &[("rows", json!([])), ("updates", json!([]))]);
        // Empty batch is still a 400; give it a real op so open runs.
        match append(&body, &c) {
            Err(JobError::BadRequest(_)) => {}
            other => panic!("empty batch must 400, got {other:?}"),
        }
        let (base_no_ofds, ds) = {
            let (b, ds) = sample_body();
            let mut b2 = b.clone();
            if let Value::Object(fields) = &mut b2 {
                fields.retain(|(k, _)| k != "ofds");
            }
            (b2, ds)
        };
        let row: Vec<String> = ds.clean.row_texts(0).iter().map(|s| s.to_string()).collect();
        let body = with_ops(&base_no_ofds, &[("rows", json!([row]))]);
        let (v, _) = append(&body, &c).expect("discovery-mode append");
        let sigma = v.get("sigma").and_then(Value::as_array).expect("sigma");
        assert!(!sigma.is_empty(), "clinical preset plants discoverable OFDs");
    }

    #[test]
    fn discovery_mode_under_a_tripped_guard_opens_no_session() {
        let (base, _) = sample_body();
        let mut c = ctx();
        c.guard = ExecGuard::with_max_work(1);
        let mut body = base.clone();
        if let Value::Object(fields) = &mut body {
            fields.retain(|(k, _)| k != "ofds");
        }
        let body = with_ops(&body, &[("rows", json!([["a", "b", "c", "d", "e"]]))]);
        let (v, outcome) = append(&body, &c).expect("incomplete open");
        assert!(outcome.incomplete);
        assert_eq!(v.get("session"), Some(&Value::Null));
        assert!(c.sessions.is_empty(), "no partial-Σ session may exist");
    }
}
