//! A deliberately small HTTP/1.1 subset over [`std::net::TcpStream`]:
//! one request per connection, `Content-Length` bodies only (no chunked
//! encoding, no keep-alive, no TLS). Exactly what the resilience layer
//! needs and nothing the vendored-dependency policy would forbid.
//!
//! Limits are enforced while reading: oversized headers or bodies fail
//! fast with a typed error the server maps to `431`/`413`, so a
//! misbehaving client cannot balloon server memory before admission
//! control even sees the request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde_json::Value;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query string is kept as-is).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Request line or headers malformed.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Body exceeded the server's configured cap.
    BodyTooLarge,
    /// Socket error or timeout mid-request.
    Io(std::io::Error),
    /// Peer closed the connection before a full request arrived.
    Disconnected,
    /// Peer closed the connection mid-body: the head promised more bytes
    /// than ever arrived. Distinct from [`HttpError::Malformed`] so
    /// breakers classify a client abort (their fault, connection gone)
    /// separately from malformed input (answerable with a 400).
    Truncated,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Disconnected => write!(f, "client disconnected"),
            HttpError::Truncated => write!(f, "connection closed mid-body"),
        }
    }
}

/// Reads one request from `stream`, enforcing `max_body` and a
/// `read_timeout` that bounds how long a slow client can hold the
/// connection open mid-head (slowloris protection — the timeout applies
/// per read syscall, the head size cap bounds the total).
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    read_timeout: Duration,
) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(HttpError::Io)?;

    // Accumulate until the blank line terminating the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Disconnected);
                }
                return Err(HttpError::Malformed("eof inside request head".into()));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-utf8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }

    // The head read may have pulled in the start of the body.
    let mut body = buf.split_off(head_end + 4);
    if body.len() > content_length {
        return Err(HttpError::Malformed("body longer than content-length".into()));
    }
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
        if body.len() > content_length {
            return Err(HttpError::Malformed("body longer than content-length".into()));
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialise. Always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// Status code (e.g. 200, 429).
    pub status: u16,
    /// Extra headers beyond the computed `Content-Type`/`Content-Length`.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Value) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: serde_json::to_string(value)
                .expect("Value serialization is infallible")
                .into_bytes(),
            content_type: "application/json",
        }
    }

    /// A raw JSON response from already-serialised text (used by
    /// `/metrics`, whose schema-v1 serialiser lives in `ofd-obs`).
    pub fn json_text(status: u16, text: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: text.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Serialises the response onto `stream`. Errors are returned, not
    /// panicked on — the peer may be gone already.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn, 1024 * 1024, Duration::from_secs(5));
        writer.join().expect("writer");
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(b"POST /v1/discover HTTP/1.1\r\ncontent-length: 5\r\nx-a: b\r\n\r\nhello")
            .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/discover");
        assert_eq!(req.header("x-a"), Some("b"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body_before_reading_it() {
        let err = roundtrip(b"POST /v1/clean HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n")
            .expect_err("too large");
        assert!(matches!(err, HttpError::BodyTooLarge));
    }

    #[test]
    fn rejects_malformed_request_line() {
        let err = roundtrip(b"NONSENSE\r\n\r\n").expect_err("malformed");
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn empty_connection_is_a_disconnect() {
        let err = roundtrip(b"").expect_err("disconnect");
        assert!(matches!(err, HttpError::Disconnected));
    }

    #[test]
    fn eof_mid_body_is_truncated_not_malformed() {
        // The head promises 100 bytes; the client sends 5 and hangs up.
        let err = roundtrip(b"POST /v1/clean HTTP/1.1\r\ncontent-length: 100\r\n\r\nhello")
            .expect_err("truncated");
        assert!(matches!(err, HttpError::Truncated), "got {err:?}");
    }
}
