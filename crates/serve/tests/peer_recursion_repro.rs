//! Throwaway repro: unknown-dataset describe with mutual peers.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

#[test]
fn unknown_dataset_describe_with_mutual_peers() {
    let pa = free_port();
    let pb = free_port();
    let tmp = std::env::temp_dir().join(format!("ofd-recursion-repro-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    let obs_a = ofd_core::Obs::enabled();
    let obs_b = ofd_core::Obs::enabled();
    let mk = |port: u16, peer: u16, who: &str, obs: &ofd_core::Obs| ofd_serve::ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        checkpoint_dir: Some(tmp.join(who)),
        peers: vec![format!("127.0.0.1:{peer}").parse().unwrap()],
        obs: obs.clone(),
        ..ofd_serve::ServeConfig::default()
    };
    let _a = ofd_serve::Server::bind(mk(pa, pb, "a", &obs_a)).expect("bind a");
    let _b = ofd_serve::Server::bind(mk(pb, pa, "b", &obs_b)).expect("bind b");

    let start = std::time::Instant::now();
    let mut s = TcpStream::connect(("127.0.0.1", pa)).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(b"GET /v1/datasets/nope HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut reply = Vec::new();
    let _ = s.read_to_end(&mut reply);
    let elapsed = start.elapsed();

    let count = |obs: &ofd_core::Obs| obs.snapshot().counter("serve.requests").unwrap_or(0);
    eprintln!(
        "repro: one client GET took {elapsed:?}; serve.requests a={} b={}; reply head: {}",
        count(&obs_a),
        count(&obs_b),
        String::from_utf8_lossy(&reply[..reply.len().min(120)])
    );
    // Give lingering recursion a moment, then sample again.
    std::thread::sleep(Duration::from_secs(2));
    eprintln!(
        "repro after 2s more: serve.requests a={} b={}",
        count(&obs_a),
        count(&obs_b)
    );
}
