//! Threaded stress tests for the circuit breaker's half-open window.
//!
//! The half-open contract is "exactly one probe": when an open circuit's
//! cooldown expires, many requests race `admit()` at once and precisely
//! one may proceed — two concurrent probes would double the blast radius
//! the breaker exists to bound, zero would wedge the circuit open
//! forever. The mutex in `Breaker` makes the `Open → HalfOpen`
//! transition atomic with the admission decision; these tests hammer
//! that window from many threads, repeatedly, to catch any regression
//! toward check-then-act.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ofd_serve::{Admission, Breaker};

/// Races `threads` callers into `admit()` right as the cooldown expires
/// and returns how many were admitted.
fn race_once(breaker: &Arc<Breaker>, threads: usize) -> usize {
    // Open the circuit, then let the cooldown lapse so the *next* admit
    // is the half-open probe.
    breaker.on_failure();
    std::thread::sleep(Duration::from_millis(3));

    let barrier = Arc::new(Barrier::new(threads));
    let admitted = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let breaker = breaker.clone();
            let barrier = barrier.clone();
            let admitted = admitted.clone();
            std::thread::spawn(move || {
                barrier.wait();
                if matches!(breaker.admit(), Admission::Allowed) {
                    admitted.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("racer");
    }
    admitted.load(Ordering::SeqCst)
}

#[test]
fn half_open_admits_exactly_one_probe_under_contention() {
    let breaker = Arc::new(Breaker::new(1, Duration::from_millis(1)));
    for round in 0..50 {
        let admitted = race_once(&breaker, 8);
        assert_eq!(
            admitted, 1,
            "round {round}: {admitted} concurrent probes admitted (want exactly 1)"
        );
        // Settle the probe so the next round starts from a closed
        // circuit; alternate outcomes so both settle paths are raced.
        if round % 2 == 0 {
            breaker.on_success();
        } else {
            breaker.on_failure();
            std::thread::sleep(Duration::from_millis(3));
            assert!(
                matches!(breaker.admit(), Admission::Allowed),
                "failed probe re-opens, then recovers after cooldown"
            );
            breaker.on_success();
        }
    }
}

#[test]
fn aborted_probe_never_loses_the_slot_under_contention() {
    // The probe_aborted path (probe shed before running) races new
    // admits: the circuit must end up open — never stuck half-open with
    // the lone probe slot leaked.
    let breaker = Arc::new(Breaker::new(1, Duration::from_millis(1)));
    for _ in 0..50 {
        breaker.on_failure();
        std::thread::sleep(Duration::from_millis(3));
        assert!(matches!(breaker.admit(), Admission::Allowed), "probe slot");

        let barrier = Arc::new(Barrier::new(5));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let breaker = breaker.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    matches!(breaker.admit(), Admission::Allowed)
                })
            })
            .collect();
        barrier.wait();
        breaker.probe_aborted();
        let stolen: usize = handles
            .into_iter()
            .map(|h| usize::from(h.join().expect("racer")))
            .sum();
        // The abort re-opens the circuit; a concurrent admit may land in
        // the fresh cooldown's expiry only if the cooldown already
        // lapsed, in which case it *is* the new legitimate probe.
        assert!(stolen <= 1, "{stolen} admits raced one aborted probe");
        breaker.on_success();
    }
}

#[test]
fn sustained_hammering_settles_to_a_usable_circuit() {
    // Mixed traffic — admits, failures, successes from many threads for
    // a while — must leave the breaker in a state that still serves.
    let breaker = Arc::new(Breaker::new(3, Duration::from_millis(2)));
    let deadline = Instant::now() + Duration::from_millis(300);
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let breaker = breaker.clone();
            std::thread::spawn(move || {
                while Instant::now() < deadline {
                    match breaker.admit() {
                        Admission::Allowed => {
                            if i % 3 == 0 {
                                breaker.on_failure();
                            } else {
                                breaker.on_success();
                            }
                        }
                        Admission::Rejected { retry_after } => {
                            assert!(retry_after <= Duration::from_millis(2));
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread");
    }
    breaker.on_success();
    assert!(
        matches!(breaker.admit(), Admission::Allowed),
        "circuit recovers once traffic is healthy"
    );
}
