//! End-to-end tests for the resilient service layer: real sockets, real
//! worker pool, real engines. Each test binds its own server on a free
//! port and shuts it down explicitly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ofd_datagen::{clinical, csv, PresetConfig};
use ofd_discovery::{DiscoveryOptions, FastOfd};
use ofd_serve::{ServeConfig, Server};
use serde_json::{json, Value};

// ------------------------------------------------------------ tiny client

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Value,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: Option<&Value>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body_text = body
        .map(|b| serde_json::to_string(b).expect("serialize"))
        .unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body_text.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body_text.as_bytes()).expect("write body");
    read_reply(&mut stream)
}

fn read_reply(stream: &mut TcpStream) -> Reply {
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read reply");
    let text = String::from_utf8(raw).expect("utf8 reply");
    let (head, body) = text.split_once("\r\n\r\n").expect("reply head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = if body.is_empty() {
        Value::Null
    } else {
        serde_json::from_str(body).unwrap_or(Value::String(body.to_string()))
    };
    Reply {
        status,
        headers,
        body,
    }
}

// --------------------------------------------------------------- fixtures

fn dataset(rows: usize) -> (String, String) {
    let ds = clinical(&PresetConfig {
        n_rows: rows,
        n_attrs: 6,
        n_ofds: 2,
        seed: 11,
        ..PresetConfig::default()
    });
    (
        csv::write_csv(&ds.clean),
        ofd_ontology::write_ontology(&ds.full_ontology),
    )
}

/// Σ of the response as comparable keys — `support_bits` makes the
/// comparison bit-exact, no float formatting in the loop.
fn sigma_keys(reply: &Value) -> Vec<(String, String, u64, u64)> {
    let mut keys: Vec<_> = reply
        .get("ofds")
        .and_then(Value::as_array)
        .expect("ofds array")
        .iter()
        .map(|o| {
            let lhs: Vec<&str> = o
                .get("lhs")
                .and_then(Value::as_array)
                .expect("lhs")
                .iter()
                .map(|v| v.as_str().expect("lhs name"))
                .collect();
            (
                lhs.join(","),
                o.get("rhs").and_then(Value::as_str).expect("rhs").to_string(),
                o.get("support_bits").and_then(Value::as_u64).expect("bits"),
                o.get("level").and_then(Value::as_u64).expect("level"),
            )
        })
        .collect();
    keys.sort();
    keys
}

fn reference_sigma(csv_text: &str, onto_text: &str) -> Vec<(String, String, u64, u64)> {
    let rel = csv::read_csv(csv_text).expect("csv");
    let onto = ofd_ontology::parse_ontology(onto_text).expect("onto");
    let out = FastOfd::new(&rel, &onto)
        .options(DiscoveryOptions::new())
        .run();
    assert!(out.complete, "reference run is uninterrupted");
    let schema = rel.schema();
    let mut keys: Vec<_> = out
        .ofds
        .iter()
        .map(|d| {
            let lhs: Vec<&str> = d.ofd.lhs.iter().map(|a| schema.name(a)).collect();
            (
                lhs.join(","),
                schema.name(d.ofd.rhs).to_string(),
                d.support.to_bits(),
                d.level as u64,
            )
        })
        .collect();
    keys.sort();
    keys
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ofd-serve-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ------------------------------------------------------------------ tests

#[test]
fn health_ready_metrics_and_routing() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.addr();

    let health = request(addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);

    let ready = request(addr, "GET", "/readyz", None);
    assert_eq!(ready.status, 200);
    assert_eq!(ready.body.get("ready").and_then(Value::as_bool), Some(true));

    let metrics = request(addr, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.body.get("version").and_then(Value::as_u64),
        Some(1),
        "metrics speak schema v1"
    );
    let counters = metrics.body.get("counters").expect("counters");
    for name in ofd_serve::SERVE_COUNTERS {
        assert!(
            counters.get(name).and_then(Value::as_u64).is_some(),
            "pinned counter {name} present from the first scrape"
        );
    }

    assert_eq!(request(addr, "GET", "/nope", None).status, 405);
    assert_eq!(request(addr, "POST", "/v1/nope", None).status, 404);
    let bad = request(addr, "POST", "/v1/discover", Some(&json!("not an object")));
    assert_eq!(bad.status, 400);

    server.shutdown(Duration::from_secs(5));
}

#[test]
fn discover_roundtrip_matches_in_process_run() {
    let (csv_text, onto_text) = dataset(200);
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.addr();

    let reply = request(
        addr,
        "POST",
        "/v1/discover",
        Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
    );
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body.get("status").and_then(Value::as_str),
        Some("complete")
    );
    assert_eq!(
        sigma_keys(&reply.body),
        reference_sigma(&csv_text, &onto_text),
        "served Σ is bit-identical to the in-process run"
    );

    let summary = server.shutdown(Duration::from_secs(5));
    assert_eq!(summary.admitted, 1);
    assert_eq!(summary.shed, 0);
}

#[test]
fn validate_and_clean_roundtrip() {
    let (csv_text, onto_text) = dataset(150);
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.addr();

    // Discover to get a real OFD spec, then validate and clean with it.
    let discovered = request(
        addr,
        "POST",
        "/v1/discover",
        Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
    );
    let specs: Vec<Value> = discovered
        .body
        .get("ofds")
        .and_then(Value::as_array)
        .expect("ofds")
        .iter()
        .take(2)
        .map(|o| {
            let lhs: Vec<&str> = o
                .get("lhs")
                .and_then(Value::as_array)
                .expect("lhs")
                .iter()
                .map(|v| v.as_str().expect("name"))
                .collect();
            json!(format!(
                "{}->{}",
                lhs.join(","),
                o.get("rhs").and_then(Value::as_str).expect("rhs")
            ))
        })
        .collect();
    assert!(!specs.is_empty(), "clinical preset plants OFDs");

    let validated = request(
        addr,
        "POST",
        "/v1/validate",
        Some(&json!({
            "csv": &csv_text,
            "ontology": &onto_text,
            "ofds": Value::Array(specs.clone()),
        })),
    );
    assert_eq!(validated.status, 200);
    assert_eq!(
        validated.body.get("all_satisfied").and_then(Value::as_bool),
        Some(true),
        "discovered OFDs validate on the clean instance"
    );

    let cleaned = request(
        addr,
        "POST",
        "/v1/clean",
        Some(&json!({
            "csv": &csv_text,
            "ontology": &onto_text,
            "ofds": Value::Array(specs),
        })),
    );
    assert_eq!(cleaned.status, 200);
    assert_eq!(
        cleaned.body.get("satisfied").and_then(Value::as_bool),
        Some(true)
    );
    assert!(cleaned
        .body
        .get("repaired_csv")
        .and_then(Value::as_str)
        .is_some());

    server.shutdown(Duration::from_secs(5));
}

#[test]
fn tiny_queue_sheds_with_backoff_hints_and_retries_succeed() {
    let (csv_text, onto_text) = dataset(800);
    let server = Server::bind(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let reference = reference_sigma(&csv_text, &onto_text);

    // Fire a burst bigger than workers + queue; some must shed.
    let mut clients = Vec::new();
    for _ in 0..6 {
        let (csv_text, onto_text) = (csv_text.clone(), onto_text.clone());
        clients.push(std::thread::spawn(move || {
            request(
                addr,
                "POST",
                "/v1/discover",
                Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
            )
        }));
    }
    let replies: Vec<Reply> = clients.into_iter().map(|c| c.join().expect("client")).collect();
    let shed: Vec<&Reply> = replies.iter().filter(|r| r.status == 429).collect();
    let ok: Vec<&Reply> = replies.iter().filter(|r| r.status == 200).collect();
    assert!(!shed.is_empty(), "burst of 6 over capacity 2 must shed");
    assert!(!ok.is_empty(), "some of the burst is admitted");
    for r in &shed {
        assert!(r.header("retry-after").is_some(), "shed carries Retry-After");
        assert!(
            r.body.get("retry_after_ms").and_then(Value::as_u64).is_some(),
            "shed carries a millisecond hint"
        );
    }
    for r in &ok {
        assert_eq!(sigma_keys(&r.body), reference, "admitted bursts are correct");
    }

    // A shed client that retries with backoff eventually gets through.
    let mut backoff = Duration::from_millis(50);
    let deadline = Instant::now() + Duration::from_secs(60);
    let reply = loop {
        let r = request(
            addr,
            "POST",
            "/v1/discover",
            Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
        );
        if r.status == 200 {
            break r;
        }
        assert_eq!(r.status, 429, "only shedding on this path");
        assert!(Instant::now() < deadline, "retry must eventually succeed");
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_secs(1));
    };
    assert_eq!(sigma_keys(&reply.body), reference);

    let summary = server.shutdown(Duration::from_secs(10));
    assert!(summary.shed >= 1);
    assert!(summary.admitted >= 1);
}

#[test]
fn drain_cancels_in_flight_then_restart_resumes_byte_identically() {
    let (csv_text, onto_text) = dataset(2500);
    let ckpt = tmp_dir("drain");
    let reference = reference_sigma(&csv_text, &onto_text);

    let server = Server::bind(ServeConfig {
        checkpoint_dir: Some(ckpt.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Long job in flight...
    let inflight = {
        let (csv_text, onto_text) = (csv_text.clone(), onto_text.clone());
        std::thread::spawn(move || {
            request(
                addr,
                "POST",
                "/v1/discover",
                Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
            )
        })
    };
    std::thread::sleep(Duration::from_millis(300));

    // ...when the drain hits (the /admin/drain path, same as SIGTERM).
    let drained = request(addr, "POST", "/admin/drain", None);
    assert_eq!(drained.status, 200);
    assert!(server.is_draining());
    assert!(server.drain_requested());

    // The in-flight job is answered: complete if it won the race, else a
    // sound INCOMPLETE partial cancelled at a checkpoint.
    let reply = inflight.join().expect("inflight client");
    assert_eq!(reply.status, 200, "admitted work is answered, not dropped");
    let status = reply.body.get("status").and_then(Value::as_str).expect("status");
    if status == "incomplete" {
        assert_eq!(
            reply.body.get("interrupt").and_then(Value::as_str),
            Some("cancelled")
        );
        // Soundness: the partial Σ is a subset of the reference.
        for key in sigma_keys(&reply.body) {
            assert!(reference.contains(&key), "partial Σ entry {key:?} is sound");
        }
    } else {
        assert_eq!(sigma_keys(&reply.body), reference);
    }

    // Draining server refuses new work and reports not-ready.
    assert_eq!(request(addr, "GET", "/readyz", None).status, 503);
    let refused = request(
        addr,
        "POST",
        "/v1/discover",
        Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
    );
    assert_eq!(refused.status, 503);
    assert!(refused.header("retry-after").is_some());

    server.shutdown(Duration::from_secs(30));

    // Restart on the same checkpoint dir: the same request resumes (when
    // the drained run got far enough to snapshot) and the final Σ is
    // byte-identical to the uninterrupted reference either way.
    let server = Server::bind(ServeConfig {
        checkpoint_dir: Some(ckpt.clone()),
        ..ServeConfig::default()
    })
    .expect("bind restarted");
    let reply = request(
        server.addr(),
        "POST",
        "/v1/discover",
        Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
    );
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body.get("status").and_then(Value::as_str),
        Some("complete")
    );
    assert_eq!(
        sigma_keys(&reply.body),
        reference,
        "post-restart result is byte-identical to an uninterrupted run"
    );
    server.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn breaker_opens_after_consecutive_panics_and_recovers() {
    let (csv_text, onto_text) = dataset(120);
    let server = Server::bind(ServeConfig {
        breaker_threshold: 2,
        breaker_cooldown_ms: 200,
        // The inject_panic chaos hook only arms under an active plan; a
        // zero-probability site keeps the plan itself inert.
        faults: ofd_core::FaultPlan::parse("seed=1,delay%0").expect("plan"),
        ..ServeConfig::default()
    })
    .expect("bind");
    ofd_core::silence_injected_panics();
    let addr = server.addr();
    let body = json!({ "csv": &csv_text, "ontology": &onto_text, "inject_panic": true });

    // Two consecutive handler panics → 500, 500, then the circuit opens.
    assert_eq!(request(addr, "POST", "/v1/discover", Some(&body)).status, 500);
    assert_eq!(request(addr, "POST", "/v1/discover", Some(&body)).status, 500);
    let open = request(addr, "POST", "/v1/discover", Some(&body));
    assert_eq!(open.status, 503);
    assert_eq!(
        open.body.get("error").and_then(Value::as_str),
        Some("circuit_open")
    );
    assert!(open.header("retry-after").is_some());

    // Other endpoints are isolated: their breakers are untouched.
    let other = request(
        addr,
        "POST",
        "/v1/validate",
        Some(&json!({ "csv": &csv_text, "ontology": &onto_text, "ofds": ["A->B"] })),
    );
    assert_ne!(other.status, 503, "validate endpoint unaffected");

    // After the cooldown a healthy request is the half-open probe; its
    // success closes the circuit for good.
    std::thread::sleep(Duration::from_millis(300));
    let healthy = json!({ "csv": &csv_text, "ontology": &onto_text });
    let probe = request(addr, "POST", "/v1/discover", Some(&healthy));
    assert_eq!(probe.status, 200, "half-open probe admitted and succeeds");
    let after = request(addr, "POST", "/v1/discover", Some(&healthy));
    assert_eq!(after.status, 200, "circuit closed again");

    let summary = server.shutdown(Duration::from_secs(10));
    assert!(summary.breaker_open >= 1);
}

#[test]
fn client_disconnect_cancels_the_running_job() {
    let (csv_text, onto_text) = dataset(2500);
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.addr();

    // Send a long discover request, then hang up without reading.
    {
        let body_text =
            serde_json::to_string(&json!({ "csv": &csv_text, "ontology": &onto_text }))
                .expect("serialize");
        let mut stream = TcpStream::connect(addr).expect("connect");
        let head = format!(
            "POST /v1/discover HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
            body_text.len()
        );
        stream.write_all(head.as_bytes()).expect("head");
        stream.write_all(body_text.as_bytes()).expect("body");
        // Dropping the stream closes the socket → watcher sees EOF.
    }

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = server.obs().snapshot();
        if snap.counter_sum("serve.client_disconnect") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect watcher must cancel the abandoned job"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown(Duration::from_secs(30));
}

#[test]
fn readyz_reports_state_queue_depth_and_breaker_summary() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let ready = request(server.addr(), "GET", "/readyz", None);
    assert_eq!(ready.status, 200);
    assert_eq!(ready.body.get("state").and_then(Value::as_str), Some("ok"));
    assert_eq!(ready.body.get("queue_depth").and_then(Value::as_u64), Some(0));
    assert!(
        ready.body.get("queue_cap").and_then(Value::as_u64).unwrap_or(0) > 0,
        "capacity reported next to depth"
    );
    let breakers = ready.body.get("breakers").expect("breaker summary");
    for endpoint in ["discover", "clean", "validate"] {
        assert_eq!(
            breakers.get(endpoint).and_then(Value::as_str),
            Some("closed"),
            "fresh server: {endpoint} breaker closed"
        );
    }
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn dataset_catalog_registers_resolves_and_survives_restart() {
    let (csv_text, onto_text) = dataset(200);
    let ckpt = tmp_dir("catalog");
    let reference = reference_sigma(&csv_text, &onto_text);

    let server = Server::bind(ServeConfig {
        checkpoint_dir: Some(ckpt.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Register once...
    let put = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_text, "ontology": &onto_text })),
    );
    assert_eq!(put.status, 200);
    assert_eq!(put.body.get("version").and_then(Value::as_u64), Some(1));

    // ...then run jobs by reference instead of re-shipping rows.
    let by_ref = request(addr, "POST", "/v1/discover", Some(&json!({ "dataset": "clinical" })));
    assert_eq!(by_ref.status, 200);
    assert_eq!(
        by_ref.body.get("dataset").and_then(Value::as_str),
        Some("clinical@1"),
        "response echoes the resolved reference"
    );
    assert_eq!(
        sigma_keys(&by_ref.body),
        reference,
        "by-reference Σ is bit-identical to the inline run"
    );

    // Catalog API: list and describe (metadata only).
    let list = request(addr, "GET", "/v1/datasets", None);
    assert_eq!(list.status, 200);
    assert_eq!(
        list.body.get("datasets").and_then(Value::as_array).map(Vec::len),
        Some(1)
    );
    let meta = request(addr, "GET", "/v1/datasets/clinical", None);
    assert_eq!(meta.status, 200);
    assert_eq!(meta.body.get("n_rows").and_then(Value::as_u64), Some(200));
    assert!(meta.body.get("csv").is_none(), "describe never ships rows");

    // Re-registration appends a version; the pin still resolves v1.
    let put2 = request(
        addr,
        "PUT",
        "/v1/datasets/clinical",
        Some(&json!({ "csv": &csv_text })),
    );
    assert_eq!(put2.body.get("version").and_then(Value::as_u64), Some(2));

    // Unknown references and bad names are client errors.
    let unknown = request(addr, "POST", "/v1/discover", Some(&json!({ "dataset": "nope" })));
    assert_eq!(unknown.status, 400);
    let bad = request(addr, "PUT", "/v1/datasets/has.dot", Some(&json!({ "csv": "A\n1\n" })));
    assert_eq!(bad.status, 400);

    server.shutdown(Duration::from_secs(10));

    // Full restart on the same root: the catalog is durable and the
    // pinned version still answers byte-identically.
    let server = Server::bind(ServeConfig {
        checkpoint_dir: Some(ckpt.clone()),
        ..ServeConfig::default()
    })
    .expect("bind restarted");
    let reply = request(
        server.addr(),
        "POST",
        "/v1/discover",
        Some(&json!({ "dataset": "clinical@1" })),
    );
    assert_eq!(reply.status, 200);
    assert_eq!(sigma_keys(&reply.body), reference, "catalog survives restart");
    server.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn dataset_reference_on_a_catalogless_server_is_refused() {
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let addr = server.addr();
    let reply = request(addr, "POST", "/v1/discover", Some(&json!({ "dataset": "x" })));
    assert_eq!(reply.status, 400, "no catalog dir → dataset refs are client errors");
    let put = request(addr, "PUT", "/v1/datasets/x", Some(&json!({ "csv": "A\n1\n" })));
    assert_eq!(put.status, 503, "catalog API reports the missing configuration");
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn timeout_budget_yields_incomplete_not_error() {
    let (csv_text, onto_text) = dataset(2500);
    let server = Server::bind(ServeConfig::default()).expect("bind");
    let reply = request(
        server.addr(),
        "POST",
        "/v1/discover",
        Some(&json!({ "csv": &csv_text, "ontology": &onto_text, "timeout_ms": 1 })),
    );
    assert_eq!(reply.status, 200, "a timed-out job is a sound partial, not a failure");
    assert_eq!(
        reply.body.get("status").and_then(Value::as_str),
        Some("incomplete")
    );
    assert_eq!(
        reply.body.get("interrupt").and_then(Value::as_str),
        Some("deadline_exceeded")
    );
    server.shutdown(Duration::from_secs(10));
}
