//! The whole paper as one asserted walkthrough: every running example from
//! Table 1 to Table 6, executed in order against this implementation.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use std::collections::HashSet;

use fastofd::clean::{
    assign_all, build_classes, conflict_graph, delta_p, ofd_clean, vertex_cover,
    OfdCleanConfig, SenseAssignment, SenseView,
};
use fastofd::core::{
    table1, table1_updated, Ofd, Partition, Relation, SenseIndex, Validator,
};
use fastofd::discovery::FastOfd;
use fastofd::logic::{derive, implies, minimal_cover, Dependency};
use fastofd::ontology::{samples, OntologyBuilder};

fn main() {
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    let schema = rel.schema();
    let validator = Validator::new(&rel, &onto);

    // ── §2: Π_CC and Example 2.2 ────────────────────────────────────────
    println!("§2  Π_CC over Table 1:");
    let cc = schema.attr("CC").unwrap();
    let pi = Partition::of(&rel, fastofd::core::AttrSet::single(cc));
    for class in pi.classes() {
        let labels: Vec<String> = class.iter().map(|t| format!("t{}", t + 1)).collect();
        println!("    {{{}}}", labels.join(","));
    }
    assert_eq!(pi.class_count(), 3);

    let common = onto.common_sense(["United States", "America", "USA"]);
    println!(
        "    names(United States) ∩ names(America) ∩ names(USA) = {:?}",
        onto.concept(common[0]).unwrap().label()
    );

    let f1 = Ofd::synonym_named(schema, &["CC"], "CTRY").unwrap();
    assert!(!validator.check_fd(&f1.as_fd()) && validator.check(&f1).satisfied());
    println!("    F1 [CC]→CTRY: FD ✗ / synonym OFD ✓\n");

    // ── Table 2: pairwise-common but globally empty ─────────────────────
    println!("Table 2  pairwise senses do not suffice:");
    let t2 = Relation::from_rows(
        ["X", "Y"],
        [&["u", "v"] as &[&str], &["u", "w"], &["u", "z"]],
    )
    .unwrap();
    let mut b = OntologyBuilder::new();
    b.concept("C").synonyms(["v", "z"]).build().unwrap();
    b.concept("D").synonyms(["v", "w"]).build().unwrap();
    b.concept("F").synonyms(["w", "z"]).build().unwrap();
    let t2_onto = b.finish().unwrap();
    for (a, c) in [("v", "w"), ("v", "z"), ("w", "z")] {
        assert!(!t2_onto.common_sense([a, c]).is_empty());
    }
    let xy = Ofd::synonym_named(t2.schema(), &["X"], "Y").unwrap();
    assert!(!Validator::new(&t2, &t2_onto).check(&xy).satisfied());
    println!("    every pair shares a class, the triple does not → OFD ✗\n");

    // ── Example 3.2: transitivity fails on instances ────────────────────
    println!("Example 3.2  transitivity fails for OFDs:");
    let e32 = Relation::from_rows(
        ["A", "B", "C"],
        [&["a", "b", "d"] as &[&str], &["a", "c", "e"], &["a", "b", "d"]],
    )
    .unwrap();
    let mut b = OntologyBuilder::new();
    b.concept("bc").synonyms(["b", "c"]).build().unwrap();
    let e32_onto = b.finish().unwrap();
    let v32 = Validator::new(&e32, &e32_onto);
    let ab = Ofd::synonym_named(e32.schema(), &["A"], "B").unwrap();
    let bc = Ofd::synonym_named(e32.schema(), &["B"], "C").unwrap();
    let ac = Ofd::synonym_named(e32.schema(), &["A"], "C").unwrap();
    assert!(v32.check(&ab).satisfied() && v32.check(&bc).satisfied());
    assert!(!v32.check(&ac).satisfied());
    println!("    A→B ✓, B→C ✓, A→C ✗\n");

    // ── Example 3.9: minimal cover + derivation ─────────────────────────
    println!("Example 3.9  minimal cover:");
    let d1 = Dependency::new(schema.set(["CC"]).unwrap(), schema.set(["CTRY"]).unwrap());
    let d2 = Dependency::new(
        schema.set(["CC", "DIAG"]).unwrap(),
        schema.set(["MED"]).unwrap(),
    );
    let d3 = Dependency::new(
        schema.set(["CC", "DIAG"]).unwrap(),
        schema.set(["MED", "CTRY"]).unwrap(),
    );
    let cover = minimal_cover(&[d1, d2, d3]);
    assert_eq!(cover.len(), 2);
    assert!(implies(&[d1, d2], &d3));
    let proof = derive(&[d1, d2], &d3).unwrap();
    assert!(proof.verify(&[d1, d2]));
    println!("    Σ₃ follows by Composition; proof of {} steps verified\n", proof.steps.len());

    // ── §4: FastOFD discovery ───────────────────────────────────────────
    let discovered = FastOfd::new(&rel, &onto).run();
    assert!(discovered.ofds().any(|o| *o == f1));
    println!(
        "§4  FastOFD: {} minimal synonym OFDs over Table 1 (complete & brute-force-checked)\n",
        discovered.len()
    );

    // ── Example 1.2 / Table 4 / Figure 7 / Table 6 ─────────────────────
    println!("Table 4  the updated subset (t8–t11, t11[CTRY]=Uni. States):");
    let sub = Relation::from_rows(
        ["CC", "CTRY", "SYMP", "DIAG", "MED"],
        [
            &["US", "USA", "headache", "hypertension", "cartia"] as &[&str],
            &["US", "USA", "headache", "hypertension", "ASA"],
            &["US", "America", "headache", "hypertension", "tiazac"],
            &["US", "Uni. States", "headache", "hypertension", "adizem"],
        ],
    )
    .unwrap();
    let sigma = vec![
        Ofd::synonym_named(sub.schema(), &["CC"], "CTRY").unwrap(),
        Ofd::synonym_named(sub.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
    ];
    let classes = build_classes(&sub, &sigma);
    let index = SenseIndex::synonym(&sub, &onto);
    let overlay = HashSet::new();
    let view = SenseView {
        base: &index,
        overlay: &overlay,
    };
    let mut assignment: SenseAssignment = assign_all(&classes, view);
    assignment.set(1, 0, Some(onto.names("tiazac")[0])); // FDA sense, as §6
    let conflicts = conflict_graph(&sub, &classes, &assignment, view);
    let edges: Vec<String> = conflicts
        .iter()
        .map(|c| format!("(t{},t{})", c.t1 + 8, c.t2 + 8))
        .collect();
    println!("Figure 7  conflict edges: {}", edges.join(" "));
    let cover: Vec<String> = vertex_cover(&conflicts)
        .iter()
        .map(|t| format!("t{}", t + 8))
        .collect();
    let dp = delta_p(&conflicts, &sigma);
    println!("Table 6   C₂opt = {{{}}}, δ_P = {dp}", cover.join(","));
    assert_eq!(dp, 4, "the ∅-repair row of Table 6");

    // With ASA added under FDA the bound halves (row 2 of Table 6).
    let mut asa_overlay = HashSet::new();
    asa_overlay.insert((sub.pool().get("ASA").unwrap(), onto.names("tiazac")[0]));
    let view2 = SenseView {
        base: &index,
        overlay: &asa_overlay,
    };
    let c2 = conflict_graph(&sub, &classes, &assignment, view2);
    assert_eq!(delta_p(&c2, &sigma), 2);
    println!("          +ASA(FDA): δ_P = 2 — the paper's best single repair\n");

    // ── §5–6: OFDClean end to end on the full dirty table ───────────────
    let dirty = table1_updated();
    let sigma_full = vec![
        Ofd::synonym_named(dirty.schema(), &["CC"], "CTRY").unwrap(),
        Ofd::synonym_named(dirty.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
    ];
    let result = ofd_clean(&dirty, &onto, &sigma_full, &OfdCleanConfig::default());
    assert!(result.satisfied);
    println!(
        "§5–6  OFDClean on the dirty Table 1: I′ ⊨ Σ with {} ontology insertion(s) + {} cell repair(s)",
        result.ontology_dist(),
        result.data_dist()
    );
    println!("\nwalkthrough complete — every paper example asserted ✓");
}
