//! Country codes under multiple standards (§1's ISO vs UN motivation):
//! a dependency `CTRY → CC` flags `CA` / `CAN` / `CAD` as errors under a
//! traditional FD, while the synonym OFD recognizes them as one code —
//! then a stale row forces an ontology repair.
//!
//! ```text
//! cargo run --example country_codes
//! ```

use fastofd::clean::{ofd_clean, OfdCleanConfig};
use fastofd::core::{Ofd, Relation, Validator};
use fastofd::ontology::samples;

fn main() {
    let rel = Relation::from_rows(
        ["CTRY", "CC", "REGION"],
        [
            &["Canada", "CA", "NA"] as &[&str],
            &["Canada", "CAN", "NA"],
            &["Canada", "CAD", "NA"],
            &["United States", "US", "NA"],
            &["United States", "USA", "NA"],
            &["India", "IN", "AS"],
            &["India", "IND", "AS"],
            // A stale row using a code the ontology does not know yet:
            &["India", "IN-21", "AS"],
        ],
    )
    .expect("country table");
    let onto = samples::country_code_ontology();
    println!("{rel}");

    let ofd = Ofd::synonym_named(rel.schema(), &["CTRY"], "CC").expect("CTRY -> CC");
    let validator = Validator::new(&rel, &onto);

    // Plain FD: everything is an "error".
    println!(
        "as a plain FD, CTRY -> CC holds: {}",
        validator.check_fd(&ofd.as_fd())
    );
    // Synonym OFD: only the stale IN-21 row is a genuine violation.
    let check = validator.check(&ofd);
    println!(
        "as a synonym OFD it holds: {} (violating classes: {})",
        check.satisfied(),
        check.violation_count()
    );
    for v in check.violations() {
        println!(
            "  class of {:?}: {}/{} tuples consistent",
            rel.text(v.representative as usize, rel.schema().attr("CTRY").unwrap()),
            v.covered,
            v.size
        );
    }

    // OFDClean decides between updating IN-21 and teaching the ontology.
    let result = ofd_clean(&rel, &onto, &[ofd], &OfdCleanConfig::default());
    println!(
        "\nOFDClean: satisfied={} — {} ontology insertion(s), {} cell repair(s)",
        result.satisfied,
        result.ontology_dist(),
        result.data_dist()
    );
    for (v, s) in &result.ontology_adds {
        println!(
            "  ontology: {:?} joins {:?}",
            result.repaired.pool().resolve(*v),
            result.repaired_ontology.concept(*s).expect("sense").label()
        );
    }
    for r in &result.data_repairs {
        println!("  data: row {} {:?} -> {:?}", r.row, r.old, r.new);
    }
    println!("\nPareto frontier (ontology insertions k vs remaining repair bound):");
    for point in &result.plan.pareto {
        println!("  k = {}: {} data repair(s) still needed", point.k, point.cover);
    }
    assert!(result.satisfied);
}
