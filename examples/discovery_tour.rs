//! Discovery tour: run FastOFD and all seven FD-discovery baselines on the
//! same dataset, compare outputs and runtimes, and show what approximate
//! and inheritance discovery add.
//!
//! ```text
//! cargo run --release --example discovery_tour [N]
//! ```

use std::time::Instant;

use fastofd::baselines::Algorithm;
use fastofd::core::OfdKind;
use fastofd::datagen::{clinical, PresetConfig};
use fastofd::discovery::{DiscoveryOptions, FastOfd};
use fastofd::logic::{is_minimal_cover, minimal_cover, Dependency};

fn main() {
    let n_rows: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let ds = clinical(&PresetConfig {
        n_rows,
        n_attrs: 8,
        ..PresetConfig::default()
    });
    let rel = &ds.clean;
    println!("dataset: {} × {}\n", rel.n_rows(), rel.n_attrs());

    // FastOFD: exact, approximate, inheritance.
    let start = Instant::now();
    let exact = FastOfd::new(rel, &ds.full_ontology).run();
    println!("FastOFD (synonym, exact):    {:3} OFDs in {:.2?}", exact.len(), start.elapsed());

    let start = Instant::now();
    let approx = FastOfd::new(rel, &ds.full_ontology)
        .options(DiscoveryOptions::new().min_support(0.9))
        .run();
    println!("FastOFD (κ = 0.9):           {:3} OFDs in {:.2?}", approx.len(), start.elapsed());

    let start = Instant::now();
    let inh = FastOfd::new(rel, &ds.full_ontology)
        .options(DiscoveryOptions::new().kind(OfdKind::Inheritance { theta: 1 }))
        .run();
    println!("FastOFD (inheritance θ=1):   {:3} OFDs in {:.2?}", inh.len(), start.elapsed());

    // The seven FD baselines.
    println!("\nFD baselines on the same relation:");
    for alg in Algorithm::ALL {
        let start = Instant::now();
        let fds = alg.discover(rel);
        println!("  {:8} {:4} minimal FDs in {:.2?}", alg.name(), fds.len(), start.elapsed());
    }

    // Logic layer: the discovered set is its own minimal cover.
    let deps: Vec<Dependency> = exact.dependencies();
    let cover = minimal_cover(&deps);
    println!(
        "\nlogic: |discovered| = {}, |minimal cover| = {}, cover is minimal: {}",
        deps.len(),
        cover.len(),
        is_minimal_cover(&cover)
    );

    // Per-level profile (Exp-4's shape).
    println!("\nlattice profile:");
    for l in &exact.stats.levels {
        println!(
            "  level {:2}: {:4} nodes, {:4} candidates, {:3} OFDs, {:.2?}",
            l.level, l.nodes, l.candidates, l.found, l.elapsed
        );
    }
}
