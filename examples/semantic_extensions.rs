//! The paper's extension features in one tour: inheritance OFDs (is-a
//! hierarchies, with θ-bounded ancestors), cleaning with respect to them,
//! antecedent-side synonyms (the response letter's W2 analysis), and the
//! NFD-equivalence of the axiom system (Theorem 3.5).
//!
//! ```text
//! cargo run --example semantic_extensions
//! ```

use fastofd::clean::{ofd_clean, OfdCleanConfig};
use fastofd::core::{check_lhs_synonyms, table1, table1_updated, Ofd, Relation, Validator};
use fastofd::logic::nfd;
use fastofd::logic::{implies, Dependency};
use fastofd::ontology::{samples, OntologyBuilder};

fn main() {
    inheritance_tour();
    lhs_synonyms_tour();
    nfd_tour();
}

fn inheritance_tour() {
    println!("== inheritance OFDs ==");
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    let schema = rel.schema();
    let lhs = schema.set(["SYMP", "DIAG"]).unwrap();
    let med = schema.attr("MED").unwrap();
    let validator = Validator::new(&rel, &onto);

    // tylenol is-a acetaminophen is-a analgesic: synonym semantics reject
    // the nausea class, inheritance semantics accept it from θ = 1.
    for theta in 0..=2 {
        let inh = Ofd::inheritance(lhs, med, theta);
        println!(
            "  [SYMP, DIAG] ->inh(θ={theta}) MED: {}",
            validator.check(&inh).satisfied()
        );
    }

    // Cleaning under inheritance semantics: the dirty Example 1.2 instance.
    let dirty = table1_updated();
    let inh = Ofd::inheritance(lhs, med, 1);
    let result = ofd_clean(&dirty, &onto, &[inh], &OfdCleanConfig::default());
    println!(
        "  OFDClean(θ=1) on the dirty table: satisfied={} ({} ontology adds, {} cell repairs)\n",
        result.satisfied,
        result.ontology_dist(),
        result.data_dist()
    );
}

fn lhs_synonyms_tour() {
    println!("== antecedent-side synonyms (response letter W2) ==");
    // The response letter's table: MED → DISEASE, where MED values merge
    // differently under the FDA and MoH interpretations.
    let rel = Relation::from_rows(
        ["SYMP", "MED", "DISEASE"],
        [
            &["Headache", "Cartia", "Hyperpiesis"] as &[&str],
            &["Headache", "Tiazac", "Hypertension"],
            &["Headache", "Bevyxxa", "Hypertension"],
            &["Headache", "Bevyxxa", "Hypertension"],
            &["Headache", "Berixaban", "HHD"],
            &["Headache", "Tiazac", "HHD"],
            &["Headache", "Aspirin", "Hyperiesia"],
        ],
    )
    .unwrap();
    let mut b = OntologyBuilder::new();
    let fda = b.interpretation("FDA");
    let moh = b.interpretation("MoH");
    b.concept("diltiazem")
        .synonyms(["Cartia", "Tiazac", "Cardizem"])
        .interpretations([fda])
        .build()
        .unwrap();
    b.concept("acetylsalicylic acid")
        .synonyms(["Cartia", "Aspirin", "ASA"])
        .interpretations([moh])
        .build()
        .unwrap();
    b.concept("hypertensive disease")
        .synonyms(["Hypertension", "HHD", "Hyperpiesis"])
        .interpretations([fda, moh])
        .build()
        .unwrap();
    let onto = b.finish().unwrap();

    let ofd = Ofd::synonym_named(rel.schema(), &["MED"], "DISEASE").unwrap();
    let result = check_lhs_synonyms(&rel, &onto, &ofd);
    for o in &result.outcomes {
        println!(
            "  under {}: {} merged classes, satisfied={}",
            o.label,
            o.merged_classes,
            o.validation.satisfied()
        );
    }
    println!(
        "  [MED] ->syn DISEASE with lhs synonyms holds overall: {}\n",
        result.satisfied()
    );
}

fn nfd_tour() {
    println!("== Theorem 3.5: OFD ≡ NFD axiom systems ==");
    let rel = table1();
    let schema = rel.schema();
    let d1 = Dependency::new(schema.set(["CC"]).unwrap(), schema.set(["CTRY"]).unwrap());
    let d2 = Dependency::new(
        schema.set(["CC", "DIAG"]).unwrap(),
        schema.set(["MED"]).unwrap(),
    );
    // O3 Composition realized purely through Lien's N-rules.
    let via_nfd = nfd::composition_via_nfd(&d1, &d2);
    println!(
        "  Composition via N-rules: {}",
        via_nfd.display(schema)
    );
    // N2 Append realized purely through the OFD axioms.
    let appended = nfd::append_via_ofd(&d1, schema.set(["SYMP"]).unwrap(), schema.set(["SYMP"]).unwrap())
        .unwrap();
    println!("  Append via O-rules:      {}", appended.display(schema));
    println!(
        "  both implied by Σ = {{d1, d2}}: {} / {}",
        implies(&[d1, d2], &via_nfd),
        implies(&[d1, d2], &appended)
    );
}
