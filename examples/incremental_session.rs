//! An interactive-style cleaning session over the real-vocabulary demo
//! data: corrupt a dataset, then repair it cell by cell while an
//! [`IncrementalChecker`] tracks the live violation count — the workflow a
//! data steward tool would drive.
//!
//! ```text
//! cargo run --release --example incremental_session
//! ```

use fastofd::clean::explain_violations;
use fastofd::core::{IncrementalChecker, SenseIndex};
use fastofd::datagen::demo_dataset;

fn main() {
    let mut ds = demo_dataset(1_200, 42);
    ds.inject_errors(0.02, 43);
    println!(
        "demo dataset: {} rows, {} injected errors",
        ds.relation.n_rows(),
        ds.injected.len()
    );

    let mut rel = ds.relation.clone();
    let mut index = SenseIndex::synonym(&rel, &ds.ontology);
    let mut checker = IncrementalChecker::new(&rel, &index, &ds.ofds);
    println!("initial violating classes: {}", checker.violation_count());

    // Show the steward what is wrong (first three explanations).
    for e in explain_violations(&rel, &ds.ontology, &ds.ofds).iter().take(3) {
        print!("{}", e.render());
    }

    // Repair session: walk the ground-truth errors (a real tool would take
    // the explain options; ground truth keeps the example deterministic)
    // and watch the violation count fall monotonically.
    let mut prev = checker.violation_count();
    for (i, err) in ds.injected.iter().enumerate() {
        let old = rel.value(err.row, err.attr);
        let new = rel.set(err.row, err.attr, &err.original).expect("in bounds");
        index.extend_synonym(&rel, &ds.ontology);
        checker
            .apply_update(&index, err.row, err.attr, old, new)
            .expect("ground-truth repair is in sync");
        let now = checker.violation_count();
        if now != prev {
            println!(
                "fix #{:<3} {}[{}] {:?} -> {:?}   violations: {} -> {}",
                i + 1,
                err.row,
                rel.schema().name(err.attr),
                err.corrupted,
                err.original,
                prev,
                now
            );
        }
        prev = now;
    }
    println!(
        "session done: satisfied = {} ({} violating classes left)",
        checker.is_satisfied(),
        checker.violation_count()
    );
    assert!(checker.is_satisfied(), "restoring ground truth must clean");
}
