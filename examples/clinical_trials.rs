//! Clinical-trials pipeline at scale: generate a LinkedCT-style dataset
//! with planted OFDs, discover them from the data, corrupt it, clean it
//! with OFDClean, and score the repairs against ground truth.
//!
//! ```text
//! cargo run --release --example clinical_trials [N]
//! ```

use fastofd::clean::{ofd_clean, repair_quality, OfdCleanConfig};
use fastofd::core::AttrId;
use fastofd::datagen::{clinical, PresetConfig};
use fastofd::discovery::{DiscoveryOptions, FastOfd};

fn main() {
    let n_rows: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let mut ds = clinical(&PresetConfig {
        n_rows,
        ..PresetConfig::default()
    });
    println!(
        "generated clinical dataset: {} tuples × {} attributes, |Σ| = {}, ontology: {} senses / {} values",
        ds.clean.n_rows(),
        ds.clean.n_attrs(),
        ds.ofds.len(),
        ds.full_ontology.len(),
        ds.full_ontology.value_count(),
    );

    // Discover OFDs from the clean instance — the planted ones (or
    // subsuming generalizations) must be found.
    let discovered = FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().max_level(3))
        .run();
    println!(
        "FastOFD (levels ≤ 3): {} minimal OFDs in {:.2?}",
        discovered.len(),
        discovered.stats.elapsed
    );
    for planted in &ds.ofds {
        let covered = discovered
            .ofds()
            .any(|o| o.rhs == planted.rhs && o.lhs.is_subset(planted.lhs));
        if covered {
            println!("  recovered {}", planted.display(ds.clean.schema()));
        }
    }

    // Corrupt: 3% cell errors + 4% ontology incompleteness (Table 5).
    ds.degrade_ontology(0.04, 7);
    ds.inject_errors(0.03, 7);
    println!(
        "\ninjected {} errors; removed {} ontology values",
        ds.injected.len(),
        ds.removed_values.len()
    );

    // Clean.
    let started = std::time::Instant::now();
    let result = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default());
    let detectable: Vec<(usize, AttrId)> = ds
        .detectable_errors()
        .iter()
        .map(|e| (e.row, e.attr))
        .collect();
    let q = repair_quality(
        &ds.relation,
        &result.repaired,
        &ds.clean,
        &detectable,
        &ds.full_ontology,
    );
    println!(
        "OFDClean: satisfied={} in {:.2?} — {} ontology insertions, {} cell repairs",
        result.satisfied,
        started.elapsed(),
        result.ontology_dist(),
        result.data_dist(),
    );
    println!(
        "repair quality vs ground truth: precision {:.3}, recall {:.3} (F1 {:.3}) over {} detectable errors",
        q.precision,
        q.recall,
        q.f1(),
        detectable.len(),
    );
}
