//! Ontology repair in depth: degrade a Kiva-style ontology (the paper's
//! `inc%`), inspect the beam-search frontier over candidate insertions, and
//! see how the Pareto trade-off between `dist(S, S′)` and `dist(I, I′)`
//! shifts with the incompleteness rate.
//!
//! ```text
//! cargo run --release --example ontology_repair
//! ```

use std::collections::HashSet;

use fastofd::clean::{
    assign_all, beam_search, build_classes, ofd_clean, ontology_quality, OfdCleanConfig,
    SenseView,
};
use fastofd::core::SenseIndex;
use fastofd::datagen::{kiva, PresetConfig};

fn main() {
    for inc_pct in [2.0, 6.0, 10.0] {
        let mut ds = kiva(&PresetConfig {
            n_rows: 2_000,
            seed: 11,
            ..PresetConfig::default()
        });
        ds.degrade_ontology(inc_pct / 100.0, 11);
        ds.inject_errors(0.03, 11);
        println!(
            "== inc% = {inc_pct}: removed {} ontology values, injected {} errors ==",
            ds.removed_values.len(),
            ds.injected.len()
        );

        // Inspect the raw beam-search frontier.
        let classes = build_classes(&ds.relation, &ds.ofds);
        let index = SenseIndex::synonym(&ds.relation, &ds.ontology);
        let overlay = HashSet::new();
        let view = SenseView {
            base: &index,
            overlay: &overlay,
        };
        let assignment = assign_all(&classes, view);
        let plan = beam_search(
            &ds.relation,
            &ds.ofds,
            &classes,
            &assignment,
            &index,
            None, // secretary-rule beam ⌊w/e⌋
            None,
        );
        println!(
            "candidates |Cand(S)| = {}, beam b = {} (secretary rule)",
            plan.candidates.len(),
            plan.beam
        );
        for point in plan.pareto.iter().take(6) {
            println!(
                "  Pareto: k = {:2} insertions → {:3} repairs still needed (δ_P = {})",
                point.k, point.cover, point.delta_p
            );
        }

        // Full pipeline + ontology-repair quality against the degradation
        // ground truth.
        let result = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default());
        let q = ontology_quality(&result.repaired, &result.ontology_adds, &ds.removed_values);
        println!(
            "chosen repair: {} insertions + {} cell updates; ontology-repair precision {:.2} recall {:.2}\n",
            result.ontology_dist(),
            result.data_dist(),
            q.precision,
            q.recall
        );
    }
}
