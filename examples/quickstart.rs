//! Quickstart: the paper's running example end to end — build the clinical
//! Table 1 and the Figure 1 medical ontology, check OFDs, discover the
//! complete minimal set, then clean the Example 1.2 updates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fastofd::clean::{ofd_clean, OfdCleanConfig};
use fastofd::core::{table1, table1_updated, Ofd, Validator};
use fastofd::discovery::FastOfd;
use fastofd::ontology::samples;

fn main() {
    // 1. The running example: Table 1 and its domain knowledge.
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    println!("Table 1 ({} tuples):\n{rel}", rel.n_rows());

    // 2. Check the paper's two dependencies.
    let validator = Validator::new(&rel, &onto);
    let f1 = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").expect("F1");
    let f2 = Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").expect("F2");
    println!(
        "{}   as FD: {}   as synonym OFD: {}",
        f1.display(rel.schema()),
        validator.check_fd(&f1.as_fd()),
        validator.check(&f1).satisfied(),
    );
    let f2_inh = Ofd::inheritance(f2.lhs, f2.rhs, 1);
    println!(
        "{}   as synonym OFD: {}   as inheritance OFD (θ=1): {}",
        f2.display(rel.schema()),
        validator.check(&f2).satisfied(),
        validator.check(&f2_inh).satisfied(),
    );

    // 3. Discover the complete, minimal set of synonym OFDs.
    let discovered = FastOfd::new(&rel, &onto).run();
    println!("\nFastOFD discovered {} minimal synonym OFDs:", discovered.len());
    print!("{}", discovered.display(rel.schema()));

    // 4. Clean the Example 1.2 instance (t9[MED]=ASA, t11[MED]=adizem).
    let dirty = table1_updated();
    let sigma = vec![f1, f2];
    let result = ofd_clean(&dirty, &onto, &sigma, &OfdCleanConfig::default());
    println!(
        "\nOFDClean on the updated table: satisfied={} — {} ontology insertion(s), {} cell repair(s)",
        result.satisfied,
        result.ontology_dist(),
        result.data_dist(),
    );
    for (v, s) in &result.ontology_adds {
        println!(
            "  ontology: add {:?} under sense {:?}",
            result.repaired.pool().resolve(*v),
            result.repaired_ontology.concept(*s).expect("sense").label(),
        );
    }
    for r in &result.data_repairs {
        println!(
            "  data: t{}[{}] {:?} -> {:?}",
            r.row + 1,
            result.repaired.schema().name(r.attr),
            r.old,
            r.new,
        );
    }
    assert!(result.satisfied, "the paper example must end consistent");
}
