//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the rand 0.10 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngExt::random_range`],
//! [`RngExt::random_bool`] and [`seq::SliceRandom::shuffle`]. The generator
//! is xoshiro256** seeded through SplitMix64 — statistically solid for test
//! and data-generation workloads, *not* cryptographic.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default generator: xoshiro256** (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors to avoid correlated low-entropy states.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range from which a value can be drawn uniformly.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range, like upstream rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, bound)` without modulo bias
/// (Lemire-style rejection on the widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() {
            // Fast accept for the overwhelmingly common case.
            return (m >> 64) as u64;
        }
        // Exact threshold check.
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring rand 0.10's `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(7).random_range(0u64..u64::MAX)
                    == c.random_range(0u64..u64::MAX)
            })
            .count();
        assert!(same < 100, "different seeds give different streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
