//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges,
//!   tuples, `&str` character-class patterns (`".{0,300}"`-style) and
//!   [`Just`];
//! * [`collection::vec`] and [`option::of`];
//! * the [`proptest!`] macro (both the block form with
//!   `#![proptest_config(...)]` and the closure form) plus
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Failing cases are **not shrunk**; the failure message reports the case
//! number and the deterministic seed so a run can be reproduced exactly.
//! Set `PROPTEST_CASES` to override the per-test case count globally.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving every strategy (xoshiro-free SplitMix64:
/// plenty for test-case generation and trivially seedable).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case: a pure function of the
    /// test's identity and the case index.
    pub fn for_case(test_id: u64, case: u64) -> TestRng {
        TestRng {
            state: test_id
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(case.wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add(0x2545_F491_4F6C_DD1D),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply mapping; the bias is < 2^-64 per draw, which is
        // irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test configuration. Mirrors the `proptest::test_runner` type of the
/// same name; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Effective case count: `PROPTEST_CASES` overrides the configured one.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `&str` patterns act as string strategies, as in proptest's regex
/// support. Only the shapes the workspace uses are understood — a single
/// character class (`.` or `[...]` with ranges) followed by an optional
/// `{a,b}` repetition — with a graceful fallback to printable ASCII for
/// anything else.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `<class>{a,b}` into (alphabet, min-len, max-len).
fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let default_alphabet = || (' '..='~').collect::<Vec<char>>();
    let chars: Vec<char> = pat.chars().collect();
    let (alphabet, rest) = match chars.first() {
        Some('.') => {
            // `.`: any char except newline; printable ASCII plus a few
            // multi-byte characters so UTF-8 boundaries get exercised.
            let mut a = default_alphabet();
            a.extend(['α', 'β', 'γ', 'é', '√']);
            (a, &chars[1..])
        }
        Some('[') => match chars.iter().position(|&c| c == ']') {
            Some(close) => (parse_class(&chars[1..close]), &chars[close + 1..]),
            None => (default_alphabet(), &chars[..0]),
        },
        _ => (default_alphabet(), &chars[..0]),
    };
    let (lo, hi) = parse_repeat(rest).unwrap_or((0, 8));
    (alphabet, lo, hi)
}

/// Parses a character-class body (`a-z`, explicit chars, mixed).
fn parse_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            if lo <= hi {
                out.extend(lo..=hi);
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    if out.is_empty() {
        out.push('x');
    }
    out
}

/// Parses `{a,b}` / `{a}` repetitions.
fn parse_repeat(rest: &[char]) -> Option<(usize, usize)> {
    let s: String = rest.iter().collect();
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    match body.split_once(',') {
        Some((a, b)) => Some((a.trim().parse().ok()?, b.trim().parse().ok()?)),
        None => {
            let n = body.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy yielding `None` 25% of the time (proptest's default
    /// weighting), `Some(inner)` otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test needs; `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
    /// Alias letting prelude users write `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Stable per-test identifier: a hash of the module path and test name,
/// so each property gets an independent deterministic stream.
#[doc(hidden)]
pub fn test_id(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The main property-test macro. Supports the block form
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0u8..3, 1..5)) { ... }
/// }
/// ```
///
/// and the closure form
/// `proptest!(config, |(x in strategy, ...)| { body });`.
#[macro_export]
macro_rules! proptest {
    // Block form with a config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    // Block form with the default config. Matched before the closure form:
    // its leading `#[...]`/`fn` tokens must never reach the closure arm's
    // `$cfg:expr` fragment (a fragment parse error there would abort the
    // expansion instead of falling through).
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::__proptest_fns! {
            cfg = $crate::ProptestConfig::default();
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)+
        }
    };
    // Closure form: proptest!(cfg, |(bindings)| { body });
    ($cfg:expr, |($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let __id = $crate::test_id(concat!(module_path!(), "::<closure>"));
        for __case in 0..__cfg.effective_cases() as u64 {
            let mut __rng = $crate::TestRng::for_case(__id, __case);
            $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
            $body
        }
    }};
    // Block form with the default config.
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Expands the function list of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __id = $crate::test_id(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.effective_cases() as u64 {
                let mut __rng = $crate::TestRng::for_case(__id, __case);
                $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __run = || -> () { $body };
                __run();
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = (0usize..7).generate(&mut rng);
            assert!(v < 7);
            let (a, b) = (1u8..=3, -2i64..3).generate(&mut rng);
            assert!((1..=3).contains(&a));
            assert!((-2..3).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::for_case(2, 0);
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..3, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            let fixed = prop::collection::vec(0u8..3, 3usize).generate(&mut rng);
            assert_eq!(fixed.len(), 3);
        }
    }

    #[test]
    fn string_patterns_parse() {
        let mut rng = crate::TestRng::for_case(3, 0);
        for _ in 0..200 {
            let s = ".{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            let t = "[ -~αβγ]{0,6}".generate(&mut rng);
            assert!(t.chars().count() <= 6);
            for c in t.chars() {
                assert!((' '..='~').contains(&c) || ['α', 'β', 'γ'].contains(&c));
            }
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = crate::TestRng::for_case(4, 0);
        let outcomes: Vec<Option<usize>> =
            (0..100).map(|_| crate::option::of(0usize..5).generate(&mut rng)).collect();
        assert!(outcomes.iter().any(Option::is_none));
        assert!(outcomes.iter().any(Option::is_some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro's own plumbing: bindings, prop_map, assertions.
        #[test]
        fn macro_block_form_works(x in 0usize..10, v in prop::collection::vec(0u8..3, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn prop_map_applies(y in (0usize..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert_ne!(y, 11);
        }
    }

    #[test]
    fn macro_closure_form_works() {
        proptest!(ProptestConfig::with_cases(8), |(s in ".{0,5}", n in 0u32..4)| {
            prop_assert!(s.chars().count() <= 5);
            prop_assert!(n < 4);
        });
    }
}
