//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the group/bencher API surface the workspace's benches use and
//! reports simple wall-clock statistics (best / median of a handful of
//! timed batches) to stdout. No statistical rigor, plots or baselines —
//! just enough to keep `cargo bench` usable offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level bench driver, handed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benches one function.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Benches one function with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibrate the batch size so one sample takes ≥ ~5 ms.
        let start = Instant::now();
        std::hint::black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(5).as_nanos() / one.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_batch as u64;
        let batch_start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.samples.push(batch_start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let best = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "  {name:<40} best {:>12} median {:>12} ({} samples)",
        format_duration(best),
        format_duration(median),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Re-export spot for `criterion::black_box` users; the std hint is the
/// real implementation.
pub use std::hint::black_box;

/// Declares a group-runner function executing each bench fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::new("with", 7), &7, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_nanos(5)).contains("ns"));
        assert!(format_duration(Duration::from_micros(50)).contains("µs"));
        assert!(format_duration(Duration::from_millis(50)).contains("ms"));
        assert!(format_duration(Duration::from_secs(50)).contains("s"));
    }
}
