//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides a self-contained JSON [`Value`], the [`json!`] macro, a strict
//! parser ([`from_str`]) and compact/pretty printers ([`to_string`],
//! [`to_string_pretty`]). Instead of serde's derived `Serialize`, types
//! opt in by implementing [`ToJson`] — one method returning a [`Value`].

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer-ness is preserved so renderers can distinguish
/// counts from measurements.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// A float.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        // Numeric equality, as in serde_json: 2 == 2.0 is false there,
        // but integer widths are unified.
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            (a, b) => a.as_i128() == b.as_i128(),
        }
    }
}

impl Number {
    fn as_i128(&self) -> i128 {
        match *self {
            Number::Int(v) => v as i128,
            Number::UInt(v) => v as i128,
            Number::Float(v) => v as i128,
        }
    }

    /// The number as an `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        })
    }

    /// The number as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as a `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) => u64::try_from(v).ok(),
            Number::UInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// Whether this number is a float (serde_json's `is_f64`).
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) if v.is_finite() => {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep the float-ness visible, as serde_json does.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Inf; serialize as null like serde_json's
            // lossy mode.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

impl Value {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => Value::from(inner),
            None => Value::Null,
        }
    }
}

/// Conversion to JSON; the stand-in for serde's derived `Serialize`.
pub trait ToJson {
    /// This value as a JSON tree.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

/// Error raised by [`from_str`] (and, for signature compatibility, carried
/// by the printers, which cannot themselves fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serializes compactly. Infallible for tree-shaped data; the `Result`
/// mirrors serde_json's signature.
pub fn to_string<T: ToJson>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Serializes with two-space indentation.
pub fn to_string_pretty<T: ToJson>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    use fmt::Write;
    let pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                let _ = write_escaped(out, k);
                out.push_str(": ");
                pretty(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

/// Deserialization from a [`Value`] tree; the stand-in for serde's
/// `Deserialize` as used by `from_str::<T>`.
pub trait FromJson: Sized {
    /// Builds `Self` from a parsed JSON tree.
    fn from_json(value: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Parses a JSON document.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in our data; map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume the longest run of plain bytes in one UTF-8
                    // validation and one push. `"` and `\` are ASCII and
                    // never occur inside a multi-byte sequence, so the
                    // scan cannot split a scalar. (Validating per
                    // character from `pos` to end-of-input made large
                    // string bodies quadratic.)
                    let start = self.pos;
                    let mut end = self.pos;
                    while let Some(&c) = self.bytes.get(end) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

/// Builds a [`Value`] from a JSON-looking literal: `json!(null)`,
/// `json!(expr)`, `json!([a, b])`, `json!({"k": v, ...})`. Nested values
/// may themselves be `null`, arrays or objects; the tt-munchers below
/// dispatch on the leading token before any `expr` fragment starts
/// parsing (a fragment parse error would abort the whole expansion).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_arr!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_obj!([] $($tt)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Object-body muncher: accumulates `(key, value)` tuples.
#[doc(hidden)]
#[macro_export]
macro_rules! json_obj {
    ([$($done:tt)*]) => { $crate::Value::Object(vec![$($done)*]) };
    ([$($done:tt)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_obj!([$($done)* ($key.to_string(), $crate::Value::Null),] $($($rest)*)?)
    };
    ([$($done:tt)*] $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_obj!([$($done)* ($key.to_string(), $crate::json!([$($arr)*])),] $($($rest)*)?)
    };
    ([$($done:tt)*] $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_obj!([$($done)* ($key.to_string(), $crate::json!({$($obj)*})),] $($($rest)*)?)
    };
    ([$($done:tt)*] $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_obj!([$($done)* ($key.to_string(), $crate::Value::from($val)),] $($rest)*)
    };
    ([$($done:tt)*] $key:literal : $val:expr) => {
        $crate::json_obj!([$($done)* ($key.to_string(), $crate::Value::from($val)),])
    };
}

/// Array-body muncher: accumulates element values.
#[doc(hidden)]
#[macro_export]
macro_rules! json_arr {
    ([$($done:tt)*]) => { $crate::Value::Array(vec![$($done)*]) };
    ([$($done:tt)*] null $(, $($rest:tt)*)?) => {
        $crate::json_arr!([$($done)* $crate::Value::Null,] $($($rest)*)?)
    };
    ([$($done:tt)*] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_arr!([$($done)* $crate::json!([$($arr)*]),] $($($rest)*)?)
    };
    ([$($done:tt)*] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_arr!([$($done)* $crate::json!({$($obj)*}),] $($($rest)*)?)
    };
    ([$($done:tt)*] $val:expr , $($rest:tt)*) => {
        $crate::json_arr!([$($done)* $crate::Value::from($val),] $($rest)*)
    };
    ([$($done:tt)*] $val:expr) => {
        $crate::json_arr!([$($done)* $crate::Value::from($val),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_trees() {
        let v = json!({"a": 1, "b": 2.5, "c": "x", "d": null, "e": true});
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert!(v.get("d").unwrap().is_null());
        assert_eq!(v.get("e").and_then(Value::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({
            "id": "exp1",
            "rows": [1, 2, 3],
            "nested": "quote \" backslash \\ newline \n αβγ",
            "f": 1.25,
            "neg": -7,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "through {text}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated"] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn parses_large_string_bodies_in_linear_time() {
        // Tripwire for the quadratic per-character validation this parser
        // once had: a few hundred KiB with sprinkled escapes and
        // multi-byte scalars — instant when linear, glacial when not.
        let payload = "line α,β,γ with \"quotes\" and \\ backslashes\n".repeat(8_000);
        let text = to_string(&json!({ "csv": &payload })).unwrap();
        assert!(text.len() > 300_000);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.get("csv").and_then(Value::as_str), Some(payload.as_str()));
    }

    #[test]
    fn parses_standalone_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>(" 42 ").unwrap(), json!(42));
        assert_eq!(from_str::<Value>("-1.5e2").unwrap(), json!(-150.0));
        assert_eq!(from_str::<Value>("\"s\"").unwrap(), json!("s"));
    }

    #[test]
    fn numbers_preserve_integerness() {
        assert!(!json!(3).as_f64().map(|_| json!(3)).unwrap().is_null());
        match json!(3) {
            Value::Number(n) => assert!(!n.is_f64()),
            _ => panic!(),
        }
        match json!(3.0) {
            Value::Number(n) => assert!(n.is_f64()),
            _ => panic!(),
        }
        assert_eq!(json!(3), json!(3u32));
        assert_ne!(json!(3), json!(3.0));
    }

    #[test]
    fn pretty_printer_indents() {
        let text = to_string_pretty(&json!({"a": [1, 2]})).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1,\n    2\n  ]\n"));
    }
}
