//! Cross-crate pipeline tests on synthetic data: generate → discover →
//! corrupt → clean → verify → score, plus CSV persistence.

use fastofd::clean::{holo_clean, ofd_clean, repair_quality, HoloConfig, OfdCleanConfig};
use fastofd::core::{AttrId, Validator};
use fastofd::datagen::{clinical, csv, kiva, PresetConfig};
use fastofd::discovery::{DiscoveryOptions, FastOfd};

fn small(seed: u64) -> PresetConfig {
    PresetConfig {
        n_rows: 600,
        n_ofds: 6,
        seed,
        ..PresetConfig::default()
    }
}

#[test]
fn full_pipeline_clinical() {
    let mut ds = clinical(&small(1));
    // Discovery on clean data recovers (a generalization of) every planted
    // OFD.
    let discovered = FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().max_level(3))
        .run();
    for planted in &ds.ofds {
        assert!(
            discovered
                .ofds()
                .any(|o| o.rhs == planted.rhs && o.lhs.is_subset(planted.lhs)),
            "planted {} not recovered",
            planted.display(ds.clean.schema())
        );
    }

    // Corrupt and clean.
    ds.degrade_ontology(0.04, 2);
    ds.inject_errors(0.03, 2);
    let result = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default());
    assert!(result.satisfied);

    // The repaired instance satisfies Σ w.r.t. the repaired ontology.
    let v = Validator::new(&result.repaired, &result.repaired_ontology);
    for ofd in &ds.ofds {
        assert!(v.check(ofd).satisfied(), "{}", ofd.display(ds.clean.schema()));
    }

    // Quality against ground truth.
    let detectable: Vec<(usize, AttrId)> = ds
        .detectable_errors()
        .iter()
        .map(|e| (e.row, e.attr))
        .collect();
    let q = repair_quality(
        &ds.relation,
        &result.repaired,
        &ds.clean,
        &detectable,
        &ds.full_ontology,
    );
    assert!(q.precision > 0.6, "precision {}", q.precision);
    assert!(q.recall > 0.6, "recall {}", q.recall);
}

#[test]
fn full_pipeline_kiva_beats_holistic_baseline() {
    let mut ds = kiva(&small(3));
    ds.inject_errors(0.05, 4);
    let detectable: Vec<(usize, AttrId)> = ds
        .detectable_errors()
        .iter()
        .map(|e| (e.row, e.attr))
        .collect();

    let ofd = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default());
    let holo = holo_clean(&ds.relation, &ds.ontology, &ds.ofds, &HoloConfig::default());
    let q_ofd = repair_quality(&ds.relation, &ofd.repaired, &ds.clean, &detectable, &ds.full_ontology);
    let q_holo = repair_quality(&ds.relation, &holo.repaired, &ds.clean, &detectable, &ds.full_ontology);
    assert!(
        q_ofd.precision > q_holo.precision,
        "OFDClean {} vs holo {}",
        q_ofd.precision,
        q_holo.precision
    );
}

#[test]
fn csv_round_trip_preserves_discovery() {
    let ds = clinical(&PresetConfig {
        n_rows: 200,
        n_attrs: 6,
        n_ofds: 2,
        seed: 5,
        ..PresetConfig::default()
    });
    let text = csv::write_csv(&ds.clean);
    let back = csv::read_csv(&text).unwrap();
    let a = FastOfd::new(&ds.clean, &ds.full_ontology).run();
    let b = FastOfd::new(&back, &ds.full_ontology).run();
    let a_set: Vec<_> = a.ofds().copied().collect();
    let b_set: Vec<_> = b.ofds().copied().collect();
    assert_eq!(a_set, b_set);
}

#[test]
fn cleaning_is_idempotent() {
    let mut ds = clinical(&small(7));
    ds.inject_errors(0.03, 8);
    let config = OfdCleanConfig::default();
    let first = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config);
    assert!(first.satisfied);
    // Cleaning the already-clean output changes nothing.
    let second = ofd_clean(
        &first.repaired,
        &first.repaired_ontology,
        &ds.ofds,
        &config,
    );
    assert!(second.satisfied);
    assert_eq!(second.data_dist(), 0, "second pass must be a no-op");
    assert_eq!(second.ontology_dist(), 0);
}

#[test]
fn tau_budget_caps_data_repairs() {
    let mut ds = clinical(&small(9));
    ds.inject_errors(0.10, 10);
    let config = OfdCleanConfig {
        tau: 0.001, // allow at most ~0.6 ≈ 0 repairs at 600 rows
        ..OfdCleanConfig::default()
    };
    let result = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config);
    let tau_max = (0.001f64 * ds.relation.n_rows() as f64).floor() as usize;
    assert!(
        result.data_dist() <= tau_max,
        "{} repairs exceed τ budget {tau_max}",
        result.data_dist()
    );
}
