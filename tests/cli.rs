//! End-to-end tests of the `fastofd` command-line binary: generate →
//! check (violated) → clean → check (satisfied), all through real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastofd"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fastofd_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn generate_check_clean_round_trip() {
    let dir = tmp_dir("roundtrip");
    let data = dir.join("d.csv");
    let onto = dir.join("o.txt");
    let repaired = dir.join("r.csv");
    let repaired_onto = dir.join("ro.txt");

    // 1. Generate a corrupted dataset.
    let out = bin()
        .args(["generate", "--preset", "clinical", "--rows", "800"])
        .args(["--err", "3", "--inc", "4", "--seed", "7"])
        .args(["--out", data.to_str().unwrap()])
        .args(["--onto-out", onto.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists() && onto.exists());

    // 2. Check: the planted OFD must be violated on the dirty data.
    let out = bin()
        .args(["check", "--data", data.to_str().unwrap()])
        .args(["--ontology", onto.to_str().unwrap()])
        .args(["--ofd", "CC->CTRY"])
        .output()
        .expect("run check");
    assert!(!out.status.success(), "dirty data must fail the check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VIOLATED"), "{stdout}");

    // 3. Clean.
    let out = bin()
        .args(["clean", "--data", data.to_str().unwrap()])
        .args(["--ontology", onto.to_str().unwrap()])
        .args(["--ofd", "CC->CTRY", "--ofd", "CC,SYMP->MED"])
        .args(["--out", repaired.to_str().unwrap()])
        .args(["--onto-out", repaired_onto.to_str().unwrap()])
        .output()
        .expect("run clean");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("satisfied: true"), "{stdout}");

    // 4. Re-check the repaired artifacts.
    let out = bin()
        .args(["check", "--data", repaired.to_str().unwrap()])
        .args(["--ontology", repaired_onto.to_str().unwrap()])
        .args(["--ofd", "CC->CTRY", "--ofd", "CC,SYMP->MED"])
        .output()
        .expect("run re-check");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("SATISFIED").count(), 2, "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn discover_prints_minimal_ofds() {
    let dir = tmp_dir("discover");
    let data = dir.join("d.csv");
    let onto = dir.join("o.txt");
    let out = bin()
        .args(["generate", "--preset", "kiva", "--rows", "500", "--seed", "3"])
        .args(["--out", data.to_str().unwrap()])
        .args(["--onto-out", onto.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let out = bin()
        .args(["discover", "--data", data.to_str().unwrap()])
        .args(["--ontology", onto.to_str().unwrap()])
        .args(["--max-level", "2", "--threads", "2"])
        .output()
        .expect("run discover");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The planted level-2 dependency CC →syn CTRY must appear.
    assert!(stdout.contains("[CC] ->syn CTRY"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn enforce_discovers_rules_and_makes_them_exact() {
    let dir = tmp_dir("enforce");
    let data = dir.join("d.csv");
    let onto = dir.join("o.txt");
    let out = bin()
        .args(["generate", "--preset", "clinical", "--rows", "700"])
        .args(["--err", "3", "--seed", "11"])
        .args(["--out", data.to_str().unwrap()])
        .args(["--onto-out", onto.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let out = bin()
        .args(["enforce", "--data", data.to_str().unwrap()])
        .args(["--ontology", onto.to_str().unwrap()])
        .args(["--kappa", "0.9"])
        .output()
        .expect("run enforce");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all rules exact: true"), "{stdout}");
    assert!(stdout.contains("[CC] ->syn CTRY"), "planted rule recovered: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_explain_prints_options() {
    let dir = tmp_dir("explain");
    let data = dir.join("d.csv");
    let onto = dir.join("o.txt");
    let out = bin()
        .args(["generate", "--preset", "demo", "--rows", "600"])
        .args(["--err", "4", "--seed", "21"])
        .args(["--out", data.to_str().unwrap()])
        .args(["--onto-out", onto.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let out = bin()
        .args(["check", "--data", data.to_str().unwrap()])
        .args(["--ontology", onto.to_str().unwrap()])
        .args(["--ofd", "CC->CTRY", "--explain"])
        .output()
        .expect("run check --explain");
    assert!(!out.status.success(), "dirty data fails the check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("violated for class"), "{stdout}");
    assert!(stdout.contains("option 1"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A run that trips an execution limit exits with the dedicated
/// INCOMPLETE code (3): the printed partial result is sound, and scripts
/// can tell "finished early under a budget" from an outright failure.
#[test]
fn incomplete_run_exits_with_code_3() {
    let dir = tmp_dir("exit3");
    let data = dir.join("d.csv");
    let onto = dir.join("o.txt");
    let out = bin()
        .args(["generate", "--preset", "clinical", "--rows", "600", "--seed", "5"])
        .args(["--out", data.to_str().unwrap()])
        .args(["--onto-out", onto.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let out = bin()
        .args(["discover", "--data", data.to_str().unwrap()])
        .args(["--ontology", onto.to_str().unwrap()])
        .args(["--max-work", "1"])
        .output()
        .expect("run budget-capped discover");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // An outright usage error stays on the generic failure code.
    let out = bin().args(["discover"]).output().expect("missing --data");
    assert_eq!(out.status.code(), Some(1));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bin().output().expect("run with no args");
    assert!(!out.status.success());
    let out = bin()
        .args(["discover"])
        .output()
        .expect("missing --data");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));
    let out = bin()
        .args(["frobnicate"])
        .output()
        .expect("unknown command");
    assert!(!out.status.success());
}
