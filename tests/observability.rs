//! Cross-crate observability and conformance tests: the exact integer
//! support boundary agreed on by three independent engines, degenerate-
//! relation conformance across every FD baseline, and well-formedness of
//! the `ofd-obs` metrics JSON — including under a guard interrupt.

use fastofd::baselines::{tane, Algorithm};
use fastofd::core::{ExecGuard, Obs, OfdKind, Relation, Schema};
use fastofd::discovery::{brute_force, DiscoveryOptions, FastOfd};
use fastofd::ontology::Ontology;

/// Ten rows over (X, A): X constant, A takes one value on eight tuples and
/// two odd ones out — so X → A has exactly 2 violating tuples out of 10.
fn boundary_relation() -> Relation {
    let mut b = Relation::builder(Schema::new(["X", "A"]).unwrap());
    for i in 0..10 {
        let a = match i {
            8 => "bad1",
            9 => "bad2",
            _ => "good",
        };
        b.push_row(["k", a]).unwrap();
    }
    b.finish()
}

fn fd_set(fds: &[fastofd::core::Fd]) -> Vec<(u64, usize)> {
    let mut v: Vec<(u64, usize)> = fds.iter().map(|f| (f.lhs.bits(), f.rhs.index())).collect();
    v.sort();
    v
}

fn ofd_set<'a>(ofds: impl Iterator<Item = &'a fastofd::core::Ofd>) -> Vec<(u64, usize)> {
    let mut v: Vec<(u64, usize)> = ofds.map(|o| (o.lhs.bits(), o.rhs.index())).collect();
    v.sort();
    v
}

/// Three independent engines — the FastOFD lattice, the brute-force oracle,
/// and TANE's g3 approximate mode — must agree on the κ boundary decided by
/// exact integer arithmetic: 8 of 10 covered tuples meet κ = 0.8 exactly,
/// and fail any κ even 1e-13 above it (the old `support + 1e-12 ≥ κ`
/// epsilon accepted both).
#[test]
fn boundary_support_three_way_agreement() {
    let rel = boundary_relation();
    let onto = Ontology::empty();
    let a_idx = rel.schema().attr("A").unwrap().index();
    for (kappa, expect_rule) in [(0.8, true), (0.8 + 1e-13, false), (0.9, false)] {
        let fast = FastOfd::new(&rel, &onto)
            .options(DiscoveryOptions::new().min_support(kappa))
            .run();
        let fast_set = ofd_set(fast.ofds());
        let brute_set = ofd_set(brute_force(&rel, &onto, OfdKind::Synonym, kappa).iter());
        let tane_set = fd_set(&tane::discover_approx(&rel, kappa));
        assert_eq!(fast_set, brute_set, "FastOFD vs oracle at κ = {kappa}");
        assert_eq!(fast_set, tane_set, "FastOFD vs TANE-approx at κ = {kappa}");
        // X is constant, so the minimal rule for consequent A is ∅ → A:
        // one class of ten tuples, majority eight — exactly the κ = 0.8
        // boundary. Any rule with consequent A stands or falls with it.
        assert_eq!(
            fast_set.iter().any(|&(_, rhs)| rhs == a_idx),
            expect_rule,
            "a rule with consequent A (8/10 support) at κ = {kappa}"
        );
    }
}

/// Degenerate relations: every baseline must agree with FastOFD (empty
/// ontology ⇒ synonym OFDs are plain FDs) on an empty relation, a single
/// row, and a relation of duplicated rows.
#[test]
fn degenerate_relations_conform_across_all_engines() {
    let schema = || Schema::new(["A", "B", "C"]).unwrap();
    let empty = Relation::builder(schema()).finish();
    let single = {
        let mut b = Relation::builder(schema());
        b.push_row(["x", "y", "z"]).unwrap();
        b.finish()
    };
    let duplicated = {
        let mut b = Relation::builder(schema());
        for _ in 0..4 {
            b.push_row(["x", "y", "z"]).unwrap();
        }
        b.finish()
    };
    let onto = Ontology::empty();
    for (name, rel) in [("empty", &empty), ("single", &single), ("duplicated", &duplicated)] {
        let reference = ofd_set(FastOfd::new(rel, &onto).run().ofds());
        for alg in Algorithm::ALL {
            assert_eq!(
                fd_set(&alg.discover(rel)),
                reference,
                "{} disagrees with FastOFD on the {name} relation",
                alg.name()
            );
        }
        assert_eq!(
            fd_set(&fastofd::baselines::hyfd::discover(rel)),
            reference,
            "HyFD disagrees with FastOFD on the {name} relation"
        );
        assert_eq!(
            fd_set(&tane::discover_approx(rel, 1.0)),
            reference,
            "TANE-approx disagrees with FastOFD on the {name} relation"
        );
    }
}

/// An interrupted instrumented run must still produce well-formed metrics
/// JSON (parsed with the vendored reader) carrying a labelled interrupt
/// counter and the schema version.
#[test]
fn interrupted_run_emits_well_formed_metrics_json() {
    let ds = fastofd::datagen::clinical(&fastofd::datagen::PresetConfig {
        n_rows: 200,
        n_attrs: 6,
        n_ofds: 2,
        seed: 7,
        ..fastofd::datagen::PresetConfig::default()
    });
    let guard = ExecGuard::unlimited();
    guard.fail_after(50);
    let obs = Obs::enabled();
    let out = FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().guard(guard.clone()).obs(obs.clone()))
        .run();
    assert!(!out.complete, "fail point must interrupt the run");

    let text = obs.snapshot().to_json_string(true);
    let v: serde_json::Value = serde_json::from_str(&text).expect("metrics JSON parses");
    assert_eq!(v.get("version").and_then(|x| x.as_u64()), Some(1));
    assert_eq!(v.get("enabled").and_then(|x| x.as_bool()), Some(true));
    let counters = v.get("counters").expect("counters object");
    assert_eq!(
        counters.get("guard.interrupt.fail_point").and_then(|x| x.as_u64()),
        Some(1),
        "interrupt must surface as a labelled counter"
    );
}
