//! Cross-crate consistency properties: FastOFD under a trivial ontology
//! coincides with classic FD discovery; discovery output respects the logic
//! layer; every OFD the validator accepts is re-derivable from the
//! discovered minimal set.

use fastofd::baselines::Algorithm;
use fastofd::core::{Ofd, OfdKind, Relation, Schema, Validator};
use fastofd::discovery::{brute_force, FastOfd};
use fastofd::logic::{implies, Dependency};
use fastofd::ontology::Ontology;
use proptest::prelude::*;

fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..5, prop::collection::vec(prop::collection::vec(0u8..3, 4), 1..14)).prop_map(
        |(n_attrs, rows)| {
            let names: Vec<String> = (0..n_attrs).map(|i| format!("A{i}")).collect();
            let mut b =
                Relation::builder(Schema::new(names.iter().map(String::as_str)).unwrap());
            for row in &rows {
                let cells: Vec<String> =
                    row[..n_attrs].iter().map(|v| format!("v{v}")).collect();
                b.push_row(cells.iter().map(String::as_str)).unwrap();
            }
            b.finish()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With an empty ontology, synonym OFDs degenerate to FDs, so FastOFD
    /// must produce exactly TANE's output (and the oracle's).
    #[test]
    fn fastofd_with_empty_ontology_equals_tane(rel in arb_relation()) {
        let onto = Ontology::empty();
        let ofds: Vec<(u64, u16)> = FastOfd::new(&rel, &onto)
            .run()
            .ofds()
            .map(|o| (o.lhs.bits(), o.rhs.index() as u16))
            .collect();
        let fds: Vec<(u64, u16)> = Algorithm::Tane
            .discover(&rel)
            .into_iter()
            .map(|f| (f.lhs.bits(), f.rhs.index() as u16))
            .collect();
        prop_assert_eq!(ofds, fds);
    }

    /// Any OFD satisfied by the instance is implied by the discovered
    /// minimal set at the logic level (completeness through the axioms).
    #[test]
    fn satisfied_ofds_are_implied_by_discovery(rel in arb_relation()) {
        let onto = Ontology::empty();
        let discovered = FastOfd::new(&rel, &onto).run();
        let sigma: Vec<Dependency> = discovered.dependencies();
        let validator = Validator::new(&rel, &onto);
        let n = rel.schema().len();
        for bits in 0..(1u64 << n) {
            let lhs = fastofd::core::AttrSet::from_bits(bits);
            for a in rel.schema().attrs() {
                if lhs.contains(a) {
                    continue;
                }
                let ofd = Ofd::synonym(lhs, a);
                if validator.check(&ofd).satisfied() {
                    prop_assert!(
                        implies(&sigma, &Dependency::from(ofd)),
                        "{} satisfied but not implied",
                        ofd.display(rel.schema())
                    );
                }
            }
        }
    }

    /// Inheritance discovery with θ = 0 equals synonym discovery (an
    /// ancestor at distance zero is the sense itself).
    #[test]
    fn theta_zero_inheritance_equals_synonym(rel in arb_relation()) {
        let onto = Ontology::empty();
        let syn = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
        let inh = brute_force(&rel, &onto, OfdKind::Inheritance { theta: 0 }, 1.0);
        let strip = |v: &[Ofd]| -> Vec<(u64, u16)> {
            v.iter().map(|o| (o.lhs.bits(), o.rhs.index() as u16)).collect()
        };
        prop_assert_eq!(strip(&syn), strip(&inh));
    }
}

fn arb_forest_ontology() -> impl Strategy<Value = Ontology> {
    use fastofd::ontology::{OntologyBuilder, SenseId};
    let concept = (
        proptest::option::of(0usize..6),
        prop::collection::vec(0u8..6, 0..3),
    );
    prop::collection::vec(concept, 0..8).prop_map(|specs| {
        let mut b = OntologyBuilder::new();
        for (ci, (parent, syns)) in specs.iter().enumerate() {
            let mut cb = b.concept(format!("c{ci}"));
            if let Some(p) = parent {
                if *p < ci {
                    cb = cb.parent(SenseId::from_index(*p));
                }
            }
            let mut values: Vec<String> = syns.iter().map(|v| format!("v{v}")).collect();
            values.sort();
            values.dedup();
            cb.synonyms(values).build().expect("valid concept");
        }
        b.finish().expect("valid ontology")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The θ-expansion equivalence behind inheritance cleaning: a native
    /// inheritance check over S equals a synonym check over S↑θ, for every
    /// dependency shape and θ.
    #[test]
    fn inheritance_check_equals_synonym_over_expansion(
        rel in arb_relation(),
        onto in arb_forest_ontology(),
        theta in 0usize..4,
    ) {
        let expanded = onto.inheritance_expansion(theta);
        let v_native = Validator::new(&rel, &onto);
        let v_expanded = Validator::new(&rel, &expanded);
        let n = rel.schema().len();
        for bits in 0..(1u64 << n) {
            let lhs = fastofd::core::AttrSet::from_bits(bits);
            for a in rel.schema().attrs() {
                if lhs.contains(a) {
                    continue;
                }
                let inh = Ofd::inheritance(lhs, a, theta);
                let syn = Ofd::synonym(lhs, a);
                let native = v_native.check(&inh);
                let via_expansion = v_expanded.check(&syn);
                prop_assert_eq!(
                    native.satisfied(),
                    via_expansion.satisfied(),
                    "{} θ={}",
                    inh.display(rel.schema()),
                    theta
                );
            }
        }
    }
}

#[test]
fn discovered_supports_are_exact() {
    // Every discovered OFD re-validates with support 1.0, and the validator
    // agrees with the recorded support for approximate discovery.
    let ds = fastofd::datagen::clinical(&fastofd::datagen::PresetConfig {
        n_rows: 300,
        n_attrs: 6,
        n_ofds: 2,
        seed: 13,
        ..fastofd::datagen::PresetConfig::default()
    });
    let validator = Validator::new(&ds.clean, &ds.full_ontology);
    let out = FastOfd::new(&ds.clean, &ds.full_ontology).run();
    for d in &out.ofds {
        let v = validator.check(&d.ofd);
        assert!(v.satisfied());
        assert!((v.support() - d.support).abs() < 1e-9);
    }
}
