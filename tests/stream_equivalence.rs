//! Streaming-maintenance equivalence properties: a `/v1/append` /
//! `/v1/retract` session fed a random interleaving of inserts, retracts
//! and consequent updates — including values with no senses and values
//! interned for the first time mid-stream — must agree with a
//! from-scratch [`Validator`] build **at every edit prefix**, survive a
//! simulated process kill (fresh session table, same checkpoint
//! directory) mid-stream, and stay correct when distinct sessions are
//! driven from concurrent threads.
//!
//! The serve layer is exercised through `jobs::execute`, the same entry
//! the HTTP worker pool calls, so request decoding, session snapshots and
//! the conflict paths are all under test — without socket flakiness.

use std::sync::Arc;

use fastofd::core::{ExecGuard, FaultPlan, Obs, Validator};
use fastofd::datagen::{clinical, csv, PresetConfig};
use fastofd::serve::jobs::{self, Endpoint, JobContext};
use fastofd::serve::StreamSessions;
use proptest::prelude::*;
use serde_json::{json, Value};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fastofd_stream_eq_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(rows: usize, seed: u64) -> fastofd::datagen::Dataset {
    let mut ds = clinical(&PresetConfig {
        n_rows: rows,
        n_attrs: 5,
        n_ofds: 2,
        seed,
        ..PresetConfig::default()
    });
    ds.inject_errors(0.03, seed);
    ds
}

fn ctx(checkpoint_root: Option<std::path::PathBuf>, sessions: Arc<StreamSessions>) -> JobContext {
    JobContext {
        guard: ExecGuard::unlimited(),
        obs: Obs::disabled(),
        faults: FaultPlan::none(),
        checkpoint_root,
        catalog: None,
        sessions,
        peers: Vec::new(),
        peer_timeouts: fastofd::serve::PeerTimeouts::default(),
    }
}

fn spec_strings(ds: &fastofd::datagen::Dataset) -> Vec<String> {
    ds.ofds
        .iter()
        .map(|o| {
            let schema = ds.relation.schema();
            let lhs: Vec<&str> = o.lhs.iter().map(|a| schema.name(a)).collect();
            format!("{}->{}", lhs.join(","), schema.name(o.rhs))
        })
        .collect()
}

/// One normalized edit, mirrored locally as plain row vectors so the
/// from-scratch oracle sees exactly what the session saw (including the
/// swap-remove rename on retract).
#[derive(Debug, Clone)]
enum Edit {
    Append(Vec<String>),
    Retract(usize),
    Update { row: usize, attr: String, value: String },
}

/// A consequent attribute that is not also an antecedent of any planted
/// OFD — the only kind of cell the update path may touch (antecedent
/// updates are rejected as retract+append material).
fn updatable_rhs(ds: &fastofd::datagen::Dataset) -> Option<fastofd::core::AttrId> {
    ds.ofds
        .iter()
        .map(|o| o.rhs)
        .find(|&r| !ds.ofds.iter().any(|o| o.lhs.contains(r)))
}

/// Derives a deterministic edit script from proptest-drawn raw choices.
/// Values mix existing texts, senseless novelties (`"novel-…"`, never in
/// the ontology) and repeats, so the stream interns new `ValueId`s and
/// hits the empty-senses violation path mid-flight.
fn script(ds: &fastofd::datagen::Dataset, raw: &[(u8, usize, usize)]) -> Vec<Edit> {
    let schema = ds.relation.schema();
    let rhs = ds.ofds[0].rhs;
    let upd = updatable_rhs(ds);
    let base_rows = ds.relation.n_rows();
    let mut n_rows = base_rows;
    let mut edits = Vec::with_capacity(raw.len());
    for (i, &(kind, a, b)) in raw.iter().enumerate() {
        match kind % 10 {
            // ~40%: append — an existing row verbatim (grows a class) or
            // with a novel consequent (senseless value → violation).
            0..=3 => {
                let mut cells: Vec<String> = ds
                    .relation
                    .row_texts(a % base_rows)
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                if b % 3 == 0 {
                    cells[rhs.index()] = format!("novel-{i}");
                }
                edits.push(Edit::Append(cells));
                n_rows += 1;
            }
            // ~30%: retract a currently valid row.
            4..=6 if n_rows > 1 => {
                edits.push(Edit::Retract(a % n_rows));
                n_rows -= 1;
            }
            // ~30%: update an updatable consequent cell — to another
            // row's value for that attribute, or to a fresh senseless
            // value. Skipped when every consequent doubles as an
            // antecedent (the preset does not plant such cycles, but the
            // script must not depend on that).
            _ if n_rows > 0 && upd.is_some() => {
                let rhs = upd.expect("checked");
                let value = if b % 4 == 0 {
                    format!("novel-{i}")
                } else {
                    ds.relation.text(b % base_rows, rhs).to_string()
                };
                edits.push(Edit::Update {
                    row: a % n_rows,
                    attr: schema.name(rhs).to_string(),
                    value,
                });
            }
            _ => {}
        }
    }
    edits
}

/// Applies one edit to the local row mirror, reproducing the session's
/// swap-remove semantics.
fn mirror_apply(rows: &mut Vec<Vec<String>>, edit: &Edit) {
    match edit {
        Edit::Append(cells) => rows.push(cells.clone()),
        Edit::Retract(row) => {
            rows.swap_remove(*row);
        }
        Edit::Update { row, attr: _, value } => {
            // attr is always the first OFD's consequent; the caller
            // resolves its column index once.
            let _ = (row, value); // column written by the caller
        }
    }
}

/// From-scratch oracle: rebuilds the relation from the mirror and counts
/// violating classes per OFD with the batch `Validator`.
fn oracle_violations(
    ds: &fastofd::datagen::Dataset,
    rows: &[Vec<String>],
) -> usize {
    let names: Vec<&str> = ds
        .relation
        .schema()
        .attrs()
        .map(|a| ds.relation.schema().name(a))
        .collect();
    let row_refs: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let rel = fastofd::core::Relation::from_rows(names, row_refs.iter().map(Vec::as_slice))
        .expect("mirror rows are well-formed");
    let validator = Validator::new(&rel, &ds.full_ontology);
    ds.ofds
        .iter()
        .map(|o| validator.check(o).violation_count())
        .sum()
}

fn base_body(ds: &fastofd::datagen::Dataset) -> Value {
    json!({
        "csv": csv::write_csv(&ds.relation),
        "ontology": fastofd::ontology::write_ontology(&ds.full_ontology),
        "ofds": spec_strings(ds),
    })
}

fn edit_body(base: &Value, edit: &Edit) -> (Endpoint, Value) {
    let mut body = base.clone();
    let Value::Object(fields) = &mut body else {
        panic!("base body is an object")
    };
    match edit {
        Edit::Append(cells) => {
            fields.push(("rows".into(), json!([cells.clone()])));
            (Endpoint::Append, body)
        }
        Edit::Retract(row) => {
            fields.push(("rows".into(), json!([*row as u64])));
            (Endpoint::Retract, body)
        }
        Edit::Update { row, attr, value } => {
            fields.push((
                "updates".into(),
                json!([{"row": *row as u64, "attr": attr, "value": value}]),
            ));
            (Endpoint::Append, body)
        }
    }
}

/// Drives `edits` through the session one edit per request, checking the
/// reported violation count against the oracle after every prefix.
/// `restart_at` (when in range) swaps in a fresh session table first —
/// the serve-process-kill simulation; resume comes from the snapshot.
fn drive_and_check(
    ds: &fastofd::datagen::Dataset,
    edits: &[Edit],
    checkpoint_root: Option<std::path::PathBuf>,
    restart_at: Option<usize>,
) {
    let base = base_body(ds);
    let col_of = |name: &str| {
        ds.relation
            .schema()
            .attr(name)
            .expect("script uses schema attrs")
            .index()
    };
    let mut mirror: Vec<Vec<String>> = (0..ds.relation.n_rows())
        .map(|r| ds.relation.row_texts(r).iter().map(|s| s.to_string()).collect())
        .collect();
    let mut c = ctx(checkpoint_root.clone(), Arc::new(StreamSessions::new()));
    let mut saw_resume = false;
    for (i, edit) in edits.iter().enumerate() {
        if restart_at == Some(i) {
            // Kill: every in-memory session is gone; only the snapshot
            // directory survives.
            c = ctx(checkpoint_root.clone(), Arc::new(StreamSessions::new()));
        }
        let (endpoint, body) = edit_body(&base, edit);
        let (reply, outcome) = jobs::execute(endpoint, &body, &c)
            .unwrap_or_else(|e| panic!("edit {i} rejected: {e:?}"));
        prop_assert!(!outcome.incomplete, "unlimited guard never interrupts");
        if reply.get("resumed_from_seq").is_some_and(|v| !v.is_null()) {
            saw_resume = true;
        }
        match edit {
            Edit::Update { row, attr, value } => mirror[*row][col_of(attr)] = value.clone(),
            other => mirror_apply(&mut mirror, other),
        }
        prop_assert_eq!(
            reply.get("n_rows").and_then(Value::as_u64),
            Some(mirror.len() as u64),
            "edit {}: row count", i
        );
        let expect = oracle_violations(ds, &mirror);
        prop_assert_eq!(
            reply.get("violations").and_then(Value::as_u64),
            Some(expect as u64),
            "edit {}: violating classes diverged from from-scratch validation", i
        );
        prop_assert_eq!(
            reply.get("all_satisfied").and_then(Value::as_bool),
            Some(expect == 0),
            "edit {}: maintained Σ frontier", i
        );
    }
    if let Some(at) = restart_at {
        // Only assert when the restart actually fired (it needs at least
        // one edit before it and one after).
        if at > 0 && at < edits.len() {
            prop_assert!(
                saw_resume,
                "a restart after applied edits must adopt the session snapshot"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every prefix of a random edit interleaving matches from-scratch
    /// validation (no checkpointing: pure in-memory maintenance).
    #[test]
    fn random_interleavings_agree_with_full_validation_at_every_prefix(
        seed in 0u64..1_000,
        raw in proptest::collection::vec((0u8..10, 0usize..10_000, 0usize..10_000), 10..40),
    ) {
        let ds = dataset(60, seed);
        let edits = script(&ds, &raw);
        drive_and_check(&ds, &edits, None, None);
    }

    /// Kill the serving process (fresh session table) at a random edit and
    /// keep going: the snapshot replay must land in the identical state,
    /// and every post-restart prefix still matches the oracle.
    #[test]
    fn kill_and_resume_mid_stream_is_exact(
        seed in 0u64..1_000,
        raw in proptest::collection::vec((0u8..10, 0usize..10_000, 0usize..10_000), 8..24),
        cut in 1usize..20,
    ) {
        let ds = dataset(50, seed);
        let edits = script(&ds, &raw);
        let dir = temp_dir(&format!("kill_{seed}"));
        let restart_at = cut.min(edits.len().saturating_sub(1)).max(1);
        drive_and_check(&ds, &edits, Some(dir.clone()), Some(restart_at));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Distinct sessions driven from concurrent threads through one shared
/// session table stay independent and each agrees with its own oracle.
#[test]
fn concurrent_sessions_stay_independent() {
    let sessions = Arc::new(StreamSessions::new());
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let sessions = sessions.clone();
            std::thread::spawn(move || {
                let ds = dataset(50, 100 + t);
                let raw: Vec<(u8, usize, usize)> = (0..20)
                    .map(|i| ((i as u8).wrapping_mul(7).wrapping_add(t as u8), i * 13 + t as usize, i * 29))
                    .collect();
                let edits = script(&ds, &raw);
                let base = base_body(&ds);
                let mut mirror: Vec<Vec<String>> = (0..ds.relation.n_rows())
                    .map(|r| ds.relation.row_texts(r).iter().map(|s| s.to_string()).collect())
                    .collect();
                let c = ctx(None, sessions);
                for edit in &edits {
                    let (endpoint, body) = edit_body(&base, edit);
                    let (reply, _) = jobs::execute(endpoint, &body, &c).expect("edit accepted");
                    match edit {
                        Edit::Update { row, attr, value } => {
                            let col = ds.relation.schema().attr(attr).expect("attr").index();
                            mirror[*row][col] = value.clone();
                        }
                        other => mirror_apply(&mut mirror, other),
                    }
                    let expect = oracle_violations(&ds, &mirror);
                    assert_eq!(
                        reply.get("violations").and_then(Value::as_u64),
                        Some(expect as u64),
                        "thread {t}: divergence from oracle"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
}
