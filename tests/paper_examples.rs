//! Integration tests reproducing the paper's running examples end to end,
//! spanning every crate through the `fastofd` umbrella.

use fastofd::clean::{ofd_clean, OfdCleanConfig};
use fastofd::core::{table1, table1_updated, Ofd, OfdKind, Validator, Witness};
use fastofd::discovery::{brute_force, FastOfd};
use fastofd::logic::{derive, implies, minimal_cover, Dependency};
use fastofd::ontology::samples;

#[test]
fn example_1_1_fds_fail_where_ofds_hold() {
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    let v = Validator::new(&rel, &onto);
    let f1 = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
    // F1 fails as an FD (USA vs America vs Bharat) but holds as an OFD.
    assert!(!v.check_fd(&f1.as_fd()));
    assert!(v.check(&f1).satisfied());
}

#[test]
fn example_2_2_witness_is_united_states() {
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    let v = Validator::new(&rel, &onto);
    let f1 = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
    let check = v.check(&f1);
    let us_class = check
        .outcomes
        .iter()
        .find(|o| o.representative == 0)
        .expect("US class");
    match us_class.witness {
        Some(Witness::Sense(s)) => {
            assert_eq!(onto.concept(s).unwrap().label(), "United States of America");
        }
        other => panic!("expected the USA sense, got {other:?}"),
    }
}

#[test]
fn example_3_2_transitivity_fails_for_ofds() {
    // R(A,B,C) with tuples {(a,b,d),(a,c,e),(a,b,d)}; b ~ c synonyms,
    // d !~ e: A →syn B and B →syn C hold but A →syn C does not.
    let rel = fastofd::core::Relation::from_rows(
        ["A", "B", "C"],
        [
            &["a", "b", "d"] as &[&str],
            &["a", "c", "e"],
            &["a", "b", "d"],
        ],
    )
    .unwrap();
    let mut builder = fastofd::ontology::OntologyBuilder::new();
    builder.concept("bc").synonyms(["b", "c"]).build().unwrap();
    let onto = builder.finish().unwrap();
    let v = Validator::new(&rel, &onto);
    let schema = rel.schema();
    let ab = Ofd::synonym_named(schema, &["A"], "B").unwrap();
    let bc = Ofd::synonym_named(schema, &["B"], "C").unwrap();
    let ac = Ofd::synonym_named(schema, &["A"], "C").unwrap();
    assert!(v.check(&ab).satisfied(), "A →syn B holds (b ~ c)");
    assert!(v.check(&bc).satisfied(), "B →syn C holds (distinct B values)");
    assert!(!v.check(&ac).satisfied(), "A →syn C fails (d !~ e)");
    // Yet at the *inference* level the axioms do chain (Theorem 3.5 made
    // them NFD-equivalent) — the instance above simply does not satisfy
    // the premises as a set: discovery on it never reports both AB and AC.
    let sigma = [Dependency::from(ab), Dependency::from(bc)];
    assert!(implies(&sigma, &Dependency::from(ac)));
}

#[test]
fn example_3_9_minimal_cover_and_derivation() {
    // Σ = {CC→CTRY, {CC,DIAG}→MED, {CC,DIAG}→{MED,CTRY}}.
    let rel = table1();
    let schema = rel.schema();
    let d1 = Dependency::new(schema.set(["CC"]).unwrap(), schema.set(["CTRY"]).unwrap());
    let d2 = Dependency::new(
        schema.set(["CC", "DIAG"]).unwrap(),
        schema.set(["MED"]).unwrap(),
    );
    let d3 = Dependency::new(
        schema.set(["CC", "DIAG"]).unwrap(),
        schema.set(["MED", "CTRY"]).unwrap(),
    );
    let sigma = vec![d1, d2, d3];
    let cover = minimal_cover(&sigma);
    assert_eq!(cover.len(), 2, "the composed member is redundant");
    // And d3 is derivable, with a verifiable proof.
    let proof = derive(&[d1, d2], &d3).expect("derivable");
    assert!(proof.verify(&[d1, d2]));
}

#[test]
fn discovery_on_table1_is_minimal_complete_and_brute_force_checked() {
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    let fast: Vec<Ofd> = FastOfd::new(&rel, &onto).run().ofds().copied().collect();
    let brute = brute_force(&rel, &onto, OfdKind::Synonym, 1.0);
    assert_eq!(fast, brute);
    // [CC] →syn CTRY is among the discovered minimal OFDs.
    let f1 = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
    assert!(fast.contains(&f1));
}

#[test]
fn example_1_2_clean_pipeline_reaches_consistency() {
    let dirty = table1_updated();
    let onto = samples::combined_paper_ontology();
    let sigma = vec![
        Ofd::synonym_named(dirty.schema(), &["CC"], "CTRY").unwrap(),
        Ofd::synonym_named(dirty.schema(), &["SYMP", "DIAG"], "MED").unwrap(),
    ];
    // The dirty instance violates Σ…
    let v = Validator::new(&dirty, &onto);
    assert!(sigma.iter().any(|o| !v.check(o).satisfied()));
    // …and OFDClean re-establishes I′ ⊨ Σ w.r.t. S′.
    let result = ofd_clean(&dirty, &onto, &sigma, &OfdCleanConfig::default());
    assert!(result.satisfied);
    let v2 = Validator::new(&result.repaired, &result.repaired_ontology);
    for ofd in &sigma {
        assert!(v2.check(ofd).satisfied());
    }
    // Repairs stay within the two resolution routes of Example 1.2.
    assert!(result.data_dist() + result.ontology_dist() <= 4);
}

#[test]
fn ontology_text_round_trip_preserves_validation() {
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    let text = fastofd::ontology::write_ontology(&onto);
    let onto2 = fastofd::ontology::parse_ontology(&text).unwrap();
    let f1 = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
    let v1 = Validator::new(&rel, &onto);
    let v2 = Validator::new(&rel, &onto2);
    assert_eq!(v1.check(&f1).satisfied(), v2.check(&f1).satisfied());
}
