//! Shape validation for checkpoint snapshots (envelope + body, schema
//! version 1).
//!
//! By default the snapshots are produced in-process by checkpointed
//! discovery and clean runs; set `SNAPSHOT_CKPT=<path>` to validate a
//! discovery snapshot file instead — CI's chaos-smoke job points it at a
//! `fastofd discover --checkpoint-dir` artifact so the checked-in schema
//! and the written files can never drift apart silently.

use fastofd::clean::{ofd_clean, OfdCleanConfig};
use fastofd::core::{fnv1a64, CheckpointOptions, SNAPSHOT_VERSION};
use fastofd::datagen::{clinical, PresetConfig};
use fastofd::discovery::{DiscoveryOptions, FastOfd};
use serde_json::Value;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fastofd_snapshot_schema_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Validates the `OFDSNAP` envelope and returns the decoded JSON body.
fn check_envelope(bytes: &[u8]) -> Value {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("envelope has a header line");
    let header = std::str::from_utf8(&bytes[..nl]).expect("header is UTF-8");
    let fields: Vec<&str> = header.split(' ').collect();
    assert_eq!(fields.len(), 4, "header is `OFDSNAP v<N> <checksum> <len>`");
    assert_eq!(fields[0], "OFDSNAP");
    assert_eq!(fields[1], format!("v{SNAPSHOT_VERSION}"));
    let body = &bytes[nl + 1..];
    assert_eq!(
        fields[2],
        format!("{:016x}", fnv1a64(body)),
        "checksum covers the body"
    );
    assert_eq!(
        fields[3].parse::<usize>().expect("length is an integer"),
        body.len(),
        "declared length matches"
    );
    serde_json::from_str(std::str::from_utf8(body).expect("body is UTF-8"))
        .expect("body is JSON")
}

fn u64_field(v: &Value, name: &str) -> u64 {
    v.get(name)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("{name} must be a u64, got {:?}", v.get(name)))
}

/// Counters serialize as `[[name, value], …]` pairs.
fn check_counters(v: &Value) {
    for pair in v.get("counters").and_then(Value::as_array).expect("counters") {
        let pair = pair.as_array().expect("counter entry is a pair");
        assert_eq!(pair.len(), 2);
        assert!(pair[0].as_str().is_some(), "counter name is a string");
        assert!(pair[1].as_u64().is_some(), "counter value is a u64");
    }
}

fn check_discovery_body(body: &Value) {
    assert_eq!(u64_field(body, "version"), 1, "schema version");
    assert_eq!(body.get("kind").and_then(Value::as_str), Some("discovery"));
    u64_field(body, "fingerprint");
    u64_field(body, "completed_level");
    u64_field(body, "work_done");
    for d in body.get("sigma").and_then(Value::as_array).expect("sigma") {
        for field in ["lhs", "rhs", "support_bits", "level"] {
            u64_field(d, field);
        }
    }
    let frontier = body.get("frontier").and_then(Value::as_array).expect("frontier");
    for n in frontier {
        u64_field(n, "attrs");
        u64_field(n, "c_plus");
    }
    for l in body.get("levels").and_then(Value::as_array).expect("levels") {
        for field in [
            "level",
            "nodes",
            "candidates",
            "verified",
            "key_shortcuts",
            "fd_shortcuts",
            "found",
            "pruned_nodes",
            "elapsed_us",
        ] {
            u64_field(l, field);
        }
    }
    check_counters(body);
}

#[test]
fn discovery_snapshot_matches_schema_v1() {
    let (bytes, cleanup) = match std::env::var("SNAPSHOT_CKPT") {
        Ok(path) => (
            std::fs::read(&path).unwrap_or_else(|e| panic!("SNAPSHOT_CKPT={path}: {e}")),
            None,
        ),
        Err(_) => {
            let ds = clinical(&PresetConfig {
                n_rows: 200,
                n_ofds: 3,
                seed: 17,
                ..PresetConfig::default()
            });
            let dir = temp_dir("discovery");
            let out = FastOfd::new(&ds.relation, &ds.ontology)
                .options(
                    DiscoveryOptions::new()
                        .max_level(2)
                        .checkpoint(CheckpointOptions::new(&dir)),
                )
                .run();
            assert!(out.snapshots_written > 0);
            let newest = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
                .max()
                .expect("a snapshot exists");
            (std::fs::read(newest).unwrap(), Some(dir))
        }
    };
    let body = check_envelope(&bytes);
    check_discovery_body(&body);
    if let Some(dir) = cleanup {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn clean_snapshot_matches_schema_v1() {
    let mut ds = clinical(&PresetConfig {
        n_rows: 150,
        n_ofds: 3,
        seed: 23,
        ..PresetConfig::default()
    });
    ds.degrade_ontology(0.04, 23);
    ds.inject_errors(0.03, 23);
    let dir = temp_dir("clean");
    let config = OfdCleanConfig {
        checkpoint: Some(CheckpointOptions::new(&dir)),
        ..OfdCleanConfig::default()
    };
    let out = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config);
    assert_eq!(out.snapshots_written, 3, "one snapshot per phase");

    for phase in 1u64..=3 {
        let path = dir.join(format!("clean.{phase:06}.ckpt"));
        let body = check_envelope(&std::fs::read(&path).unwrap());
        assert_eq!(u64_field(&body, "version"), 1);
        assert_eq!(body.get("kind").and_then(Value::as_str), Some("clean"));
        u64_field(&body, "fingerprint");
        assert_eq!(u64_field(&body, "phase"), phase);
        u64_field(&body, "reassignments");
        // Assignment: one array per OFD, entries are sense ids or null.
        let assignment = body
            .get("assignment")
            .and_then(Value::as_array)
            .expect("assignment");
        for per_ofd in assignment {
            for s in per_ofd.as_array().expect("per-OFD class array") {
                assert!(
                    s.as_u64().is_some() || matches!(s, Value::Null),
                    "sense is a u64 or null"
                );
            }
        }
        // Cumulative sections appear exactly from their phase onward.
        let has_plan = !matches!(body.get("plan"), Some(Value::Null) | None);
        let has_repairs = !matches!(body.get("repairs"), Some(Value::Null) | None);
        assert_eq!(has_plan, phase >= 2, "plan present iff phase ≥ 2");
        assert_eq!(has_repairs, phase >= 3, "repairs present iff phase ≥ 3");
        if has_repairs {
            for r in body.get("repairs").and_then(Value::as_array).unwrap() {
                u64_field(r, "row");
                u64_field(r, "attr");
                assert!(r.get("old").and_then(Value::as_str).is_some());
                assert!(r.get("new").and_then(Value::as_str).is_some());
            }
        }
        check_counters(&body);
    }
    let _ = std::fs::remove_dir_all(dir);
}
