//! Workspace-level tests locking the beyond-the-paper extension APIs:
//! inheritance cleaning, lhs synonyms, incremental tracking, ontology
//! diffs, κ-enforcement, DOT exports and the real-vocabulary demo data —
//! all through the `fastofd` umbrella.

use std::collections::HashSet;

use fastofd::clean::{
    assign_all, build_classes, conflicts_to_dot, enforce_approximate, explain_violations,
    ofd_clean, ontology_to_dot, OfdCleanConfig, SenseView,
};
use fastofd::core::{
    check_lhs_synonyms, estimate_support, table1, table1_updated, IncrementalChecker,
    NfdChecker, Ofd, SenseIndex, Validator,
};
use fastofd::datagen::demo_dataset;
use fastofd::logic::nfd;
use fastofd::logic::Dependency;
use fastofd::ontology::samples;

#[test]
fn inheritance_cleaning_full_stack() {
    let dirty = table1_updated();
    let onto = samples::combined_paper_ontology();
    let schema = dirty.schema();
    let inh = Ofd::inheritance(
        schema.set(["SYMP", "DIAG"]).unwrap(),
        schema.attr("MED").unwrap(),
        1,
    );
    let result = ofd_clean(&dirty, &onto, &[inh], &OfdCleanConfig::default());
    assert!(result.satisfied);
    // Inheritance absorbs more variation: fewer changes than synonym mode.
    let syn = Ofd::synonym(inh.lhs, inh.rhs);
    let syn_result = ofd_clean(&dirty, &onto, &[syn], &OfdCleanConfig::default());
    assert!(
        result.data_dist() + result.ontology_dist()
            <= syn_result.data_dist() + syn_result.ontology_dist()
    );
}

#[test]
fn demo_vocabulary_end_to_end_with_incremental_tracking() {
    let mut ds = demo_dataset(800, 3);
    ds.inject_errors(0.03, 4);

    // Incremental checker agrees with the validator initially…
    let index = SenseIndex::synonym(&ds.relation, &ds.ontology);
    let checker = IncrementalChecker::new(&ds.relation, &index, &ds.ofds);
    let validator = Validator::new(&ds.relation, &ds.ontology);
    let full: usize = ds
        .ofds
        .iter()
        .map(|o| validator.check(o).violation_count())
        .sum();
    assert_eq!(checker.violation_count(), full);
    assert!(full > 0);

    // …and OFDClean resolves everything the checker sees.
    let result = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default());
    assert!(result.satisfied);
    let index2 = SenseIndex::synonym(&result.repaired, &result.repaired_ontology);
    let after = IncrementalChecker::new(&result.repaired, &index2, &ds.ofds);
    assert!(after.is_satisfied());
}

#[test]
fn lhs_synonyms_and_nfd_contrast_on_paper_data() {
    let rel = table1();
    let onto = samples::combined_paper_ontology();
    let f1 = Ofd::synonym_named(rel.schema(), &["CC"], "CTRY").unwrap();
    // NFD semantics reject what OFD semantics accept (§3.1).
    assert!(Validator::new(&rel, &onto).check(&f1).satisfied());
    assert!(!NfdChecker::new(&rel, "").check(&f1.as_fd()));
    // lhs-synonym validation is vacuous here (CC values are not synonyms of
    // each other in this ontology), so every interpretation view agrees
    // with the plain check.
    let result = check_lhs_synonyms(&rel, &onto, &f1);
    assert!(result.satisfied());
}

#[test]
fn ontology_diff_round_trips_cleaning_insertions() {
    let dirty = table1_updated();
    let onto = samples::combined_paper_ontology();
    let sigma = vec![Ofd::synonym_named(dirty.schema(), &["SYMP", "DIAG"], "MED").unwrap()];
    let config = OfdCleanConfig {
        tau: 0.0, // force ontology repairs where possible
        ..OfdCleanConfig::default()
    };
    let result = ofd_clean(&dirty, &onto, &sigma, &config);
    let (adds, removed) = onto.diff(&result.repaired_ontology).unwrap();
    assert_eq!(adds.dist(), result.ontology_dist(), "diff recovers the repair");
    assert!(removed.is_empty());
}

#[test]
fn enforcement_and_explanations_compose() {
    let mut ds = demo_dataset(700, 7);
    ds.inject_errors(0.03, 8);
    // Before: explanations exist.
    let before = explain_violations(&ds.relation, &ds.ontology, &ds.ofds);
    assert!(!before.is_empty());
    // Enforce κ-approximate rules discovered from the dirty data.
    let result = enforce_approximate(
        &ds.relation,
        &ds.ontology,
        0.9,
        Some(3),
        &OfdCleanConfig::default(),
    );
    assert!(result.all_exact());
    // After: nothing left to explain for the enforced rules.
    let after = explain_violations(
        &result.clean.repaired,
        &result.clean.repaired_ontology,
        &result.sigma,
    );
    assert!(after.is_empty(), "{} residual explanations", after.len());
}

#[test]
fn family_generator_supports_inheritance_discovery_and_cleaning() {
    use fastofd::datagen::{generate, AttrRole, SynthSpec};
    use fastofd::discovery::{DiscoveryOptions, FastOfd};
    let spec = SynthSpec {
        attrs: vec![
            ("K".into(), AttrRole::Key),
            ("D".into(), AttrRole::Driver { domain: 10 }),
            (
                "R".into(),
                AttrRole::Dependent {
                    determinants: vec!["D".into()],
                    entities: 12,
                    senses: 2,
                    synonyms: 2,
                },
            ),
        ],
        n_rows: 400,
        seed: 77,
        extra_ofds: 0,
        ambiguity: 0.2,
        family_size: 3,
        family_mix: 0.35,
    };
    let mut ds = generate(&spec);
    let planted = ds.ofds[0];

    // Inheritance discovery recovers the planted dependency (or a
    // generalization) where synonym discovery cannot.
    let inh_found = FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().kind(planted.kind).max_level(2))
        .run();
    assert!(inh_found
        .ofds()
        .any(|o| o.rhs == planted.rhs && o.lhs.is_subset(planted.lhs)));
    let syn_found = FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().max_level(2))
        .run();
    assert!(!syn_found
        .ofds()
        .any(|o| o.rhs == planted.rhs && o.lhs.is_subset(planted.lhs)));

    // And inheritance cleaning repairs injected errors.
    ds.inject_errors(0.05, 78);
    let result = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default());
    assert!(result.satisfied);
}

#[test]
fn dot_exports_are_well_formed() {
    let onto = samples::medical_drug_ontology();
    let dot = ontology_to_dot(&onto);
    assert_eq!(dot.matches('{').count(), dot.matches('}').count());

    let rel = table1_updated();
    let combined = samples::combined_paper_ontology();
    let sigma = vec![Ofd::synonym_named(rel.schema(), &["SYMP", "DIAG"], "MED").unwrap()];
    let classes = build_classes(&rel, &sigma);
    let index = SenseIndex::synonym(&rel, &combined);
    let overlay = HashSet::new();
    let view = SenseView {
        base: &index,
        overlay: &overlay,
    };
    let assignment = assign_all(&classes, view);
    let conflicts = fastofd::clean::conflict_graph(&rel, &classes, &assignment, view);
    let dot = conflicts_to_dot(&rel, &classes, &conflicts);
    assert!(dot.contains("graph conflicts"));
}

#[test]
fn sampled_support_and_nfd_translations_are_consistent() {
    let ds = demo_dataset(1_000, 11);
    let index = SenseIndex::synonym(&ds.clean, &ds.full_ontology);
    for ofd in &ds.ofds {
        let exact = Validator::new(&ds.clean, &ds.full_ontology)
            .check(ofd)
            .support();
        assert_eq!(exact, 1.0, "clean data has full support");
        let est = estimate_support(&ds.clean, &index, ofd, 300, 5);
        assert!(est > 0.95, "estimate {est} on clean data");
    }
    // Theorem 3.5 translations at the workspace level.
    let schema = ds.clean.schema();
    let d1 = Dependency::new(schema.set(["CC"]).unwrap(), schema.set(["CTRY"]).unwrap());
    let d2 = Dependency::new(
        schema.set(["SYMPTOM"]).unwrap(),
        schema.set(["DRUG"]).unwrap(),
    );
    let composed = nfd::composition_via_nfd(&d1, &d2);
    assert_eq!(
        composed,
        Dependency::new(
            schema.set(["CC", "SYMPTOM"]).unwrap(),
            schema.set(["CTRY", "DRUG"]).unwrap()
        )
    );
}
