//! Shape validation for the `ofd-obs` metrics JSON (schema version 1).
//!
//! By default the document is produced in-process by an instrumented
//! discovery run; set `METRICS_JSON=<path>` to validate a file instead —
//! CI's metrics-smoke job points it at the output of
//! `scale_probe --metrics-out` so the checked-in schema and the emitted
//! artifact can never drift apart silently. A second test scrapes a live
//! `ofd-serve` `/metrics` endpoint and holds it to the same schema, with
//! the `serve.*` counters pinned by name.

use serde_json::Value;

fn produce_in_process() -> String {
    use fastofd::core::Obs;
    use fastofd::discovery::{DiscoveryOptions, FastOfd};
    let ds = fastofd::datagen::clinical(&fastofd::datagen::PresetConfig {
        n_rows: 300,
        n_attrs: 6,
        n_ofds: 2,
        seed: 11,
        ..fastofd::datagen::PresetConfig::default()
    });
    let obs = Obs::enabled();
    FastOfd::new(&ds.clean, &ds.full_ontology)
        .options(DiscoveryOptions::new().obs(obs.clone()))
        .run();
    obs.snapshot().to_json_string(true)
}

/// Assert the structural invariants every schema-v1 document must hold,
/// and return the parsed document for producer-specific checks.
fn validate_schema_v1(text: &str) -> Value {
    let v: Value = serde_json::from_str(text).expect("metrics JSON parses");

    assert_eq!(v.get("version").and_then(Value::as_u64), Some(1), "schema version");
    assert_eq!(v.get("enabled").and_then(Value::as_bool), Some(true), "enabled flag");

    let counters = match v.get("counters").expect("counters present") {
        Value::Object(fields) => fields,
        other => panic!("counters must be an object, got {other}"),
    };
    for (name, value) in counters {
        assert!(value.as_u64().is_some(), "counter {name} must be a non-negative integer");
    }

    let gauges = match v.get("gauges").expect("gauges present") {
        Value::Object(fields) => fields,
        other => panic!("gauges must be an object, got {other}"),
    };
    for (name, value) in gauges {
        assert!(value.as_f64().is_some(), "gauge {name} must be numeric");
    }

    let histograms = match v.get("histograms").expect("histograms present") {
        Value::Object(fields) => fields,
        other => panic!("histograms must be an object, got {other}"),
    };
    for (name, h) in histograms {
        let bounds = h.get("bounds").and_then(Value::as_array).expect("bounds array");
        let counts = h.get("counts").and_then(Value::as_array).expect("counts array");
        assert_eq!(
            counts.len(),
            bounds.len() + 1,
            "histogram {name}: one bucket per bound plus overflow"
        );
        assert!(
            bounds.windows(2).all(|w| w[0].as_f64() < w[1].as_f64()),
            "histogram {name}: bounds must be strictly increasing"
        );
        let total: u64 = counts.iter().map(|c| c.as_u64().expect("bucket count")).sum();
        assert_eq!(
            h.get("count").and_then(Value::as_u64),
            Some(total),
            "histogram {name}: count equals the bucket sum"
        );
        assert!(h.get("sum").and_then(Value::as_f64).is_some(), "histogram {name}: sum");
    }

    let spans = v.get("spans").and_then(Value::as_array).expect("spans array");
    for (i, s) in spans.iter().enumerate() {
        assert!(s.get("name").and_then(Value::as_str).is_some(), "span {i}: name");
        assert!(s.get("start_us").and_then(Value::as_u64).is_some(), "span {i}: start_us");
        assert!(s.get("elapsed_us").and_then(Value::as_u64).is_some(), "span {i}: elapsed_us");
        let parent = s.get("parent").expect("span parent present");
        assert!(
            parent.is_null() || (parent.as_u64().map(|p| (p as usize) < i) == Some(true)),
            "span {i}: parent must be null or an earlier span index"
        );
    }

    v
}

fn counter_names(v: &Value) -> Vec<String> {
    match v.get("counters").expect("counters present") {
        Value::Object(fields) => fields.iter().map(|(n, _)| n.clone()).collect(),
        other => panic!("counters must be an object, got {other}"),
    }
}

#[test]
fn metrics_json_matches_schema_v1() {
    let text = match std::env::var("METRICS_JSON") {
        Ok(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("METRICS_JSON={path}: {e}")),
        Err(_) => produce_in_process(),
    };
    let v = validate_schema_v1(&text);

    // The partition cache is on by default, so every instrumented discovery
    // run must publish its counters (values are workload-dependent).
    let names = counter_names(&v);
    for name in [
        "discovery.partition.cache.hits",
        "discovery.partition.cache.misses",
        "discovery.partition.cache.evicted_bytes",
    ] {
        assert!(names.iter().any(|n| n == name), "partition-cache counter {name} missing");
    }
    // The hybrid pre-filter counters are touched at engine start, so they
    // appear (as zeros) even when sampling or sharding is disabled for the
    // run — dashboards never see an absent series.
    for name in [
        "discovery.sample.rounds",
        "discovery.sample.evidence_pairs",
        "discovery.sample.candidates_pruned",
        "discovery.shard.shards",
        "discovery.shard.merged_candidates",
        "discovery.shard.candidates_pruned",
        "discovery.shard.union_validated",
    ] {
        assert!(names.iter().any(|n| n == name), "hybrid pre-filter counter {name} missing");
    }
    let gauges = match v.get("gauges").expect("gauges present") {
        Value::Object(fields) => fields.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        other => panic!("gauges must be an object, got {other}"),
    };
    for name in [
        "discovery.partition.cache.resident_bytes",
        "discovery.partition.cache.peak_resident_bytes",
    ] {
        assert!(gauges.iter().any(|n| n == name), "partition-cache gauge {name} missing");
    }
}

/// A live `/metrics` scrape is a schema-v1 document, and the service-layer
/// counters are present by name from the moment the server binds — a
/// dashboard pointed at a fresh instance sees zeros, never absent series.
#[test]
fn serve_metrics_endpoint_matches_schema_v1_with_serve_counters_pinned() {
    use fastofd::serve::{ServeConfig, Server, SERVE_COUNTERS, STREAM_COUNTERS};
    use std::io::{Read, Write};

    let server = Server::bind(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind serve on an ephemeral port");

    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n")
        .expect("send scrape");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read scrape reply");
    let text = String::from_utf8(raw).expect("utf8 reply");
    let (head, body) = text.split_once("\r\n\r\n").expect("reply head");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "scrape must succeed, got head: {head}"
    );

    let v = validate_schema_v1(body);
    let names = counter_names(&v);
    // The full pinned surface, via the crate's own constant so the server
    // and this test cannot drift apart...
    for name in SERVE_COUNTERS {
        assert!(names.iter().any(|n| n == name), "serve counter {name} missing");
    }
    // ...and the five acceptance-pinned names spelled out, so renaming a
    // counter in SERVE_COUNTERS still fails here rather than silently
    // repinning the schema.
    for name in [
        "serve.admitted",
        "serve.shed",
        "serve.breaker_open",
        "serve.drained",
        "serve.resumed",
        // The multi-host fleet surface: peer-to-peer catalog read repair
        // and cross-filesystem checkpoint shipping.
        "serve.catalog.peer_fetch",
        "serve.catalog.read_repaired",
        "serve.ship.served",
        "serve.ship.fetched",
        // The network fault-injection surface: workers publish zeros for
        // the chaos counters from bind so soak dashboards never see an
        // absent series.
        "serve.net.injected",
        "serve.net.resets",
        "serve.net.blackholes",
        "serve.net.retries_exhausted",
    ] {
        assert!(names.iter().any(|n| n == name), "acceptance counter {name} missing");
    }
    // The streaming layer's counters are pinned the same way: present
    // (zero) from bind, via the constant and by acceptance spelling.
    for name in STREAM_COUNTERS {
        assert!(names.iter().any(|n| n == name), "stream counter {name} missing");
    }
    for name in [
        "serve.stream.sessions",
        "serve.stream.resumed",
        "serve.stream.edits",
        "serve.stream.conflicts",
        "incremental.inserts",
        "incremental.retracts",
        "incremental.updates",
        "incremental.reverified_classes",
        "incremental.stale_updates",
    ] {
        assert!(names.iter().any(|n| n == name), "acceptance counter {name} missing");
    }
    // The admission-queue depth gauge is published from bind, so a fresh
    // scrape reads an explicit zero rather than a missing series.
    let depth = v
        .get("gauges")
        .and_then(|g| g.get("serve.queue.depth"))
        .and_then(Value::as_f64);
    assert_eq!(depth, Some(0.0), "serve.queue.depth gauge present on a fresh server");

    server.shutdown(std::time::Duration::from_secs(10));
}

/// The shard router's `/metrics` document obeys the same schema, with the
/// `serve.router.*` counters pinned from the moment the router binds —
/// even with zero workers behind it.
#[test]
fn router_metrics_endpoint_matches_schema_v1_with_router_counters_pinned() {
    use fastofd::serve::{Fleet, Router, RouterConfig, NET_COUNTERS, ROUTER_COUNTERS};
    use std::io::{Read, Write};

    let router = Router::bind(RouterConfig::default(), Fleet::Static(Vec::new()))
        .expect("bind router on an ephemeral port");

    let mut stream = std::net::TcpStream::connect(router.addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nhost: test\r\ncontent-length: 0\r\n\r\n")
        .expect("send scrape");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read scrape reply");
    let text = String::from_utf8(raw).expect("utf8 reply");
    let (head, body) = text.split_once("\r\n\r\n").expect("reply head");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape must succeed, got head: {head}");

    let v = validate_schema_v1(body);
    let names = counter_names(&v);
    for name in ROUTER_COUNTERS {
        assert!(names.iter().any(|n| n == name), "router counter {name} missing");
    }
    // The network fault-injection counters bind alongside the router's
    // own, so a chaos soak can attribute every injected fault by name.
    for name in NET_COUNTERS {
        assert!(names.iter().any(|n| n == name), "net counter {name} missing");
    }
    // The acceptance-pinned spellings, independent of the constant.
    for name in [
        "serve.router.routed",
        "serve.router.retried",
        "serve.router.respawned",
        "serve.router.adopted",
        // Probe-driven ring membership and quorum catalog replication.
        "serve.router.ring.ejected",
        "serve.router.ring.readmitted",
        "serve.catalog.replicated_partial",
        // Deterministic network fault injection.
        "serve.net.injected",
        "serve.net.resets",
        "serve.net.blackholes",
        "serve.net.retries_exhausted",
    ] {
        assert!(names.iter().any(|n| n == name), "acceptance counter {name} missing");
    }

    router.shutdown();
}
