//! Workspace-level crash-safety properties: a checkpointed run killed at
//! an arbitrary guard checkpoint and then resumed must reproduce the
//! uninterrupted run *exactly* — same Σ (bit-identical supports), same
//! repaired instance, same repairs — for any dataset and any kill point.
//!
//! The fail-point "kill" is equivalent to `kill -9` at the same moment as
//! far as the checkpoint directory is concerned: snapshots are written
//! only at completed level/phase boundaries, atomically, so the on-disk
//! state never reflects a half-finished phase either way.

use fastofd::clean::{ofd_clean, OfdCleanConfig};
use fastofd::core::{CheckpointOptions, ExecGuard, FaultPlan, Interrupt, Obs};
use fastofd::datagen::{clinical, PresetConfig};
use fastofd::discovery::{DiscoveryOptions, FastOfd};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fastofd_crash_resume_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(rows: usize, seed: u64) -> fastofd::datagen::Dataset {
    let mut ds = clinical(&PresetConfig {
        n_rows: rows,
        n_ofds: 4,
        seed,
        ..PresetConfig::default()
    });
    ds.degrade_ontology(0.04, seed);
    ds.inject_errors(0.03, seed);
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Discovery: kill at a random checkpoint, resume, compare Σ.
    #[test]
    fn discovery_resume_is_exact(
        seed in 0u64..1_000,
        rows in 60usize..140,
        kill_at in 1u64..1_500,
    ) {
        let ds = dataset(rows, seed);
        let base = || DiscoveryOptions::new().max_level(3);
        let reference = FastOfd::new(&ds.relation, &ds.ontology).options(base()).run();
        prop_assert!(reference.complete);

        let dir = temp_dir(&format!("disc_{seed}_{rows}_{kill_at}"));
        let guard = ExecGuard::unlimited();
        guard.fail_after(kill_at);
        let killed = FastOfd::new(&ds.relation, &ds.ontology)
            .options(base().guard(guard).checkpoint(CheckpointOptions::new(&dir)))
            .run();
        let resumed = FastOfd::new(&ds.relation, &ds.ontology)
            .options(base().checkpoint(CheckpointOptions::new(&dir).resume(true)))
            .run();
        prop_assert!(resumed.complete);
        prop_assert_eq!(&resumed.ofds, &reference.ofds);
        // Supports bit-identical, not merely approximately equal.
        for (r, f) in resumed.ofds.iter().zip(reference.ofds.iter()) {
            prop_assert_eq!(r.support.to_bits(), f.support.to_bits());
        }
        if !killed.complete && killed.snapshots_written > 0 {
            prop_assert!(resumed.resumed_from_level.is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// OFDClean: kill at a random checkpoint, resume, compare the repair.
    #[test]
    fn clean_resume_is_exact(
        seed in 0u64..1_000,
        rows in 60usize..140,
        kill_at in 1u64..80,
    ) {
        let ds = dataset(rows, seed);
        let reference = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &OfdCleanConfig::default());
        prop_assert!(reference.complete);

        let dir = temp_dir(&format!("clean_{seed}_{rows}_{kill_at}"));
        let killed_config = OfdCleanConfig {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            ..OfdCleanConfig::default()
        };
        killed_config.guard.fail_after(kill_at);
        let _killed = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &killed_config);
        let resumed = ofd_clean(
            &ds.relation,
            &ds.ontology,
            &ds.ofds,
            &OfdCleanConfig {
                checkpoint: Some(CheckpointOptions::new(&dir).resume(true)),
                ..OfdCleanConfig::default()
            },
        );
        prop_assert!(resumed.complete);
        prop_assert_eq!(resumed.repaired.cell_distance(&reference.repaired).unwrap(), 0);
        prop_assert_eq!(&resumed.data_repairs, &reference.data_repairs);
        prop_assert_eq!(&resumed.ontology_adds, &reference.ontology_adds);
        prop_assert_eq!(resumed.satisfied, reference.satisfied);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The `discovery` and `clean` snapshot streams coexist in one directory:
/// the discover → clean pipeline can checkpoint both stages side by side
/// and resume each independently.
#[test]
fn pipeline_checkpoints_share_a_directory() {
    let ds = dataset(120, 9);
    let dir = temp_dir("pipeline");

    let disc = FastOfd::new(&ds.relation, &ds.ontology)
        .options(
            DiscoveryOptions::new()
                .max_level(2)
                .checkpoint(CheckpointOptions::new(&dir)),
        )
        .run();
    assert!(disc.complete && disc.snapshots_written > 0);

    let config = OfdCleanConfig {
        checkpoint: Some(CheckpointOptions::new(&dir)),
        ..OfdCleanConfig::default()
    };
    let cleaned = ofd_clean(&ds.relation, &ds.ontology, &ds.ofds, &config);
    assert!(cleaned.complete);
    assert_eq!(cleaned.snapshots_written, 3);

    // Resume each stream against the same directory: both restore.
    let disc2 = FastOfd::new(&ds.relation, &ds.ontology)
        .options(
            DiscoveryOptions::new()
                .max_level(2)
                .checkpoint(CheckpointOptions::new(&dir).resume(true)),
        )
        .run();
    assert!(disc2.resumed_from_level.is_some());
    assert_eq!(disc2.ofds, disc.ofds);

    let cleaned2 = ofd_clean(
        &ds.relation,
        &ds.ontology,
        &ds.ofds,
        &OfdCleanConfig {
            checkpoint: Some(CheckpointOptions::new(&dir).resume(true)),
            ..OfdCleanConfig::default()
        },
    );
    assert_eq!(cleaned2.resumed_from_phase, Some(3));
    assert_eq!(cleaned2.data_repairs, cleaned.data_repairs);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two engines interleaving checkpoints in one directory — the situation
/// a misrouted serve worker would create — must stay isolated by the
/// engine fingerprint: neither resumes from the other's snapshot, and
/// both still reproduce their uninterrupted references exactly.
#[test]
fn concurrent_discoveries_in_one_directory_stay_fingerprint_isolated() {
    let ds_a = dataset(110, 21);
    let ds_b = dataset(95, 22);
    let dir = temp_dir("shared");
    let base = || DiscoveryOptions::new().max_level(3);

    let ref_a = FastOfd::new(&ds_a.relation, &ds_a.ontology).options(base()).run();
    let ref_b = FastOfd::new(&ds_b.relation, &ds_b.ontology).options(base()).run();
    assert!(ref_a.complete && ref_b.complete);

    // Interrupted runs of BOTH datasets, concurrently, into the same
    // directory and the same `discovery` stream: their snapshot writes
    // interleave freely.
    let handles: Vec<_> = [(&ds_a, 400u64), (&ds_b, 300u64)]
        .into_iter()
        .map(|(ds, kill_at)| {
            let (rel, onto, dir) = (ds.relation.clone(), ds.ontology.clone(), dir.clone());
            std::thread::spawn(move || {
                let guard = ExecGuard::unlimited();
                guard.fail_after(kill_at);
                FastOfd::new(&rel, &onto)
                    .options(
                        DiscoveryOptions::new()
                            .max_level(3)
                            .guard(guard)
                            .checkpoint(CheckpointOptions::new(&dir)),
                    )
                    .run()
            })
        })
        .collect();
    for h in handles {
        let _ = h.join().unwrap();
    }

    // Each resumed run must reproduce ITS reference bit-for-bit. The
    // newest snapshot in the shared stream belongs to one dataset at
    // most; the fingerprint check forces the other onto a fresh run
    // instead of silently adopting foreign state.
    for (ds, reference) in [(&ds_a, &ref_a), (&ds_b, &ref_b)] {
        let resumed = FastOfd::new(&ds.relation, &ds.ontology)
            .options(base().checkpoint(CheckpointOptions::new(&dir).resume(true)))
            .run();
        assert!(resumed.complete);
        assert_eq!(resumed.ofds, reference.ofds);
        for (r, f) in resumed.ofds.iter().zip(reference.ofds.iter()) {
            assert_eq!(r.support.to_bits(), f.support.to_bits());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected worker panic must surface as a labelled interrupt with a
/// sound partial Σ — the process survives, and a later clean run over the
/// partial output still works end to end.
#[test]
fn injected_panic_degrades_gracefully_across_the_pipeline() {
    fastofd::core::silence_injected_panics();
    let ds = dataset(100, 3);
    let obs = Obs::enabled();
    let out = FastOfd::new(&ds.relation, &ds.ontology)
        .options(
            DiscoveryOptions::new()
                .max_level(3)
                .threads(2)
                .obs(obs.clone())
                .faults(FaultPlan::parse("seed=5,panic@4").unwrap()),
        )
        .run();
    assert!(!out.complete);
    assert_eq!(out.interrupt, Some(Interrupt::WorkerPanic));
    assert_eq!(
        obs.snapshot().counter("guard.interrupt.worker_panic"),
        Some(1)
    );
    // The partial Σ is sound: every emitted OFD verifies on the instance.
    let validator = fastofd::core::Validator::new(&ds.relation, &ds.ontology);
    for d in &out.ofds {
        assert!(
            validator.check(&d.ofd).support() >= DiscoveryOptions::new().min_support,
            "partial Σ contains an unverified OFD"
        );
    }
}
